//! The serving loop: TCP accept, per-connection sessions, pool dispatch.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//! accept thread ──spawns──▶ connection threads ──execute──▶ pool workers
//!   (nonblocking poll)        (frame parse, admission,        (deadline check,
//!    joins conns on            deadline stamp, response        engine call —
//!    shutdown, final save)     write)                          may scatter on
//!                                                              the same pool)
//! ```
//!
//! The pool attached here is also installed as the database's executor, so a
//! query admitted by one worker scatters its tile fetches across the same
//! pool; the scoped scheduler's caller participation makes that nesting safe
//! even on a single worker.
//!
//! **Backpressure**: at most `max_inflight` requests execute at once; the
//! next one is refused with a typed `busy` response instead of queueing
//! without bound (a slow consumer learns immediately, instead of timing out
//! behind an invisible queue).
//!
//! **Deadlines**: each request carries (or inherits) a deadline stamped at
//! receipt; a worker that picks the job up past its deadline answers
//! `deadline` without touching the engine.
//!
//! **Graceful shutdown**: the flag stops the accept loop and makes idle
//! connections close; a connection mid-request finishes it and writes the
//! response. The accept thread joins every connection (the drain), then
//! performs a final atomic catalog save so a clean `fsck` is guaranteed
//! after shutdown.

use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tilestore_engine::{Array, SharedDatabase, Snapshot};
use tilestore_exec::ThreadPool;
use tilestore_geometry::Domain;
use tilestore_obs::Counter;
use tilestore_storage::PageStore;
use tilestore_testkit::{Json, ToJson};

use crate::slowlog::{SlowQueryEntry, SlowQueryLog};
use crate::wire::{
    err_response, hex_decode, ok_response, value_to_json, with_epoch, with_request_id, write_frame,
    ErrorCode, MAX_FRAME,
};

/// How often blocked reads and the accept loop re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Timeout rounds tolerated for a frame left incomplete after shutdown
/// began (~5 s) before the connection is dropped.
const SHUTDOWN_STALL_ROUNDS: u32 = 100;

/// Tuning knobs of a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the shared executor pool.
    pub workers: usize,
    /// Maximum concurrently executing requests; the next is refused `busy`.
    pub max_inflight: usize,
    /// Deadline applied to requests that carry none, in milliseconds
    /// (0 = no default deadline).
    pub default_deadline_ms: u64,
    /// Statements whose wall-clock time (admission to completion) reaches
    /// this many milliseconds land in the slow-query log (`0` logs every
    /// statement).
    pub slow_query_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            max_inflight: 64,
            default_deadline_ms: 30_000,
            slow_query_ms: 500,
        }
    }
}

/// Handle to a running server: its bound address and shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown without waiting for the drain.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to exit (drain + final save). Returns when the
    /// accept thread has finished; trigger shutdown first (or via a client's
    /// `shutdown` request) or this blocks until one arrives.
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, save.
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Upper bound on snapshots one connection may hold pinned at once. A
/// cluster coordinator pins one snapshot per in-flight cross-shard read, so
/// this bounds a misbehaving (or leaking) coordinator's hold on blob
/// reclamation without affecting well-behaved ones.
const MAX_PINS_PER_CONNECTION: usize = 64;

/// Snapshots a connection has pinned via the `pin` op, keyed by the
/// server-assigned pin id. The table is **per connection** and dropped with
/// it, so a coordinator that dies mid-scatter releases every pin on this
/// shard the moment its TCP session ends — `snapshots_active` returns to
/// baseline without any distributed garbage collection.
struct PinTable<S: PageStore> {
    next: AtomicU64,
    pins: Mutex<BTreeMap<u64, Arc<Snapshot<S>>>>,
}

impl<S: PageStore> PinTable<S> {
    fn new() -> Self {
        PinTable {
            next: AtomicU64::new(1),
            pins: Mutex::new(BTreeMap::new()),
        }
    }

    /// Pins `snap`, returning its id, or `None` at the per-connection cap.
    fn insert(&self, snap: Snapshot<S>) -> Option<u64> {
        let mut pins = self
            .pins
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pins.len() >= MAX_PINS_PER_CONNECTION {
            return None;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        pins.insert(id, Arc::new(snap));
        Some(id)
    }

    fn get(&self, id: u64) -> Option<Arc<Snapshot<S>>> {
        self.pins
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&id)
            .cloned()
    }

    fn remove(&self, id: u64) -> bool {
        self.pins
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&id)
            .is_some()
    }
}

/// Everything a connection thread needs, cheaply cloneable.
struct ConnCtx<S: PageStore> {
    db: SharedDatabase<S>,
    dir: Option<Arc<PathBuf>>,
    pool: Arc<ThreadPool>,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<AtomicUsize>,
    max_inflight: usize,
    default_deadline_ms: u64,
    requests: Arc<Counter>,
    busy_rejections: Arc<Counter>,
    deadline_rejections: Arc<Counter>,
    /// Monotonic request-id source, shared by every connection so ids are
    /// unique server-wide within a process lifetime.
    next_request: Arc<AtomicU64>,
    slow_log: Arc<SlowQueryLog>,
    /// This connection's pinned snapshots. Replaced with a fresh table for
    /// every accepted connection; clones made for pool dispatch share it.
    pins: Arc<PinTable<S>>,
}

impl<S: PageStore> Clone for ConnCtx<S> {
    fn clone(&self) -> Self {
        ConnCtx {
            db: self.db.clone(),
            dir: self.dir.clone(),
            pool: Arc::clone(&self.pool),
            shutdown: Arc::clone(&self.shutdown),
            inflight: Arc::clone(&self.inflight),
            max_inflight: self.max_inflight,
            default_deadline_ms: self.default_deadline_ms,
            requests: Arc::clone(&self.requests),
            busy_rejections: Arc::clone(&self.busy_rejections),
            deadline_rejections: Arc::clone(&self.deadline_rejections),
            next_request: Arc::clone(&self.next_request),
            slow_log: Arc::clone(&self.slow_log),
            pins: Arc::clone(&self.pins),
        }
    }
}

/// Starts serving `db` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
/// port). `dir` is the database directory for the final save and `fsck`
/// requests; pass `None` for purely in-memory serving.
///
/// The configured pool is installed as the database's executor, so queries
/// served here also parallelize their tile fetches.
///
/// # Errors
/// Socket bind/configuration errors.
pub fn serve<S: PageStore + 'static>(
    db: SharedDatabase<S>,
    dir: Option<PathBuf>,
    addr: &str,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let pool = Arc::new(ThreadPool::new(config.workers));
    db.set_executor(Arc::clone(&pool));
    let shutdown = Arc::new(AtomicBool::new(false));
    let reg = tilestore_obs::metrics();
    let slow_log = Arc::new(SlowQueryLog::new(config.slow_query_ms, dir.as_deref()));
    let ctx = ConnCtx {
        db,
        dir: dir.map(Arc::new),
        pool,
        shutdown: Arc::clone(&shutdown),
        inflight: Arc::new(AtomicUsize::new(0)),
        max_inflight: config.max_inflight.max(1),
        default_deadline_ms: config.default_deadline_ms,
        requests: reg.counter("server.requests"),
        busy_rejections: reg.counter("server.busy_rejections"),
        deadline_rejections: reg.counter("server.deadline_rejections"),
        next_request: Arc::new(AtomicU64::new(1)),
        slow_log,
        pins: Arc::new(PinTable::new()),
    };
    let connections = reg.gauge("server.connections");
    let save_errors = reg.counter("server.save_errors");
    let thread = std::thread::Builder::new()
        .name("tilestore-accept".to_string())
        .spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !ctx.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let mut ctx = ctx.clone();
                        // Pins are per-connection state: a fresh table here
                        // means a dying coordinator's pins unwind with its
                        // session instead of outliving it.
                        ctx.pins = Arc::new(PinTable::new());
                        connections.add(1);
                        let conn_gauge = Arc::clone(&connections);
                        let handle = std::thread::Builder::new()
                            .name("tilestore-conn".to_string())
                            .spawn(move || {
                                connection_loop(stream, &ctx);
                                conn_gauge.add(-1);
                            });
                        match handle {
                            Ok(h) => conns.push(h),
                            Err(_) => connections.add(-1),
                        }
                        // Reap finished sessions so the list stays bounded.
                        conns.retain(|h| !h.is_finished());
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            // Drain: every session finishes its in-flight request and exits.
            for h in conns {
                let _ = h.join();
            }
            // Final durable commit so a post-shutdown fsck comes back clean.
            if let Some(dir) = &ctx.dir {
                if ctx.db.save(dir.as_path()).is_err() {
                    save_errors.inc();
                }
            }
        })?;
    Ok(ServerHandle {
        addr: local,
        shutdown,
        thread: Some(thread),
    })
}

/// Reads one frame, polling the shutdown flag between read timeouts.
/// `Ok(None)` means the session should end: peer EOF, or shutdown observed
/// while no frame was in progress (or a frame stalled past the shutdown
/// grace period).
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    let mut stalled = 0u32;
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    if filled == 0 {
                        return Ok(None);
                    }
                    stalled += 1;
                    if stalled > SHUTDOWN_STALL_ROUNDS {
                        return Ok(None);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    let mut stalled = 0u32;
    while filled < len {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    stalled += 1;
                    if stalled > SHUTDOWN_STALL_ROUNDS {
                        return Ok(None);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// One client session: read frame → admit → dispatch on the pool → respond.
fn connection_loop<S: PageStore + 'static>(mut stream: TcpStream, ctx: &ConnCtx<S>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame_interruptible(&mut stream, &ctx.shutdown) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let received = Instant::now();
        ctx.requests.inc();
        let response = match std::str::from_utf8(&frame)
            .map_err(|e| e.to_string())
            .and_then(|s| Json::parse(s).map_err(|e| e.to_string()))
        {
            Ok(req) => dispatch(ctx, &req, received),
            Err(e) => err_response(0, ErrorCode::BadRequest, &format!("malformed frame: {e}")),
        };
        if write_frame(&mut stream, response.to_string_compact().as_bytes()).is_err() {
            return;
        }
    }
}

/// Admission + deadline stamping + pool hand-off for one parsed request.
fn dispatch<S: PageStore + 'static>(ctx: &ConnCtx<S>, req: &Json, received: Instant) -> Json {
    let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
    let Some(op) = req.get("op").and_then(Json::as_str) else {
        return err_response(id, ErrorCode::BadRequest, "missing op");
    };
    // Every admitted request gets a server-wide request id for tracing and
    // the slow-query log; a client that supplies a nonzero `request_id`
    // (e.g. to correlate across services) keeps it. The id is echoed on
    // every response, including refusals.
    let rid = req
        .get("request_id")
        .and_then(Json::as_u64)
        .filter(|&r| r != 0)
        .unwrap_or_else(|| ctx.next_request.fetch_add(1, Ordering::Relaxed));
    // Shutdown is control-plane: always admitted, handled inline so the
    // response is written before the session starts winding down.
    if op == "shutdown" {
        ctx.shutdown.store(true, Ordering::SeqCst);
        return with_request_id(ok_response(id, Json::Str("shutting down".to_string())), rid);
    }
    if ctx.shutdown.load(Ordering::SeqCst) {
        return with_request_id(
            err_response(id, ErrorCode::Shutdown, "server is shutting down"),
            rid,
        );
    }
    // Bounded admission: refuse typed-busy instead of queueing unboundedly.
    let mut cur = ctx.inflight.load(Ordering::SeqCst);
    loop {
        if cur >= ctx.max_inflight {
            ctx.busy_rejections.inc();
            return with_request_id(
                err_response(
                    id,
                    ErrorCode::Busy,
                    &format!("{} requests in flight (limit {})", cur, ctx.max_inflight),
                ),
                rid,
            );
        }
        match ctx
            .inflight
            .compare_exchange_weak(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
    // A request-supplied deadline always applies (0 expires immediately —
    // useful for probing load without doing work); the configured default
    // fills in only when the request carries none, with 0 = no deadline.
    let req_deadline = req.get("deadline_ms").and_then(Json::as_u64);
    let deadline_ms = req_deadline.unwrap_or(ctx.default_deadline_ms);
    let deadline = match req_deadline {
        Some(ms) => Some(received + Duration::from_millis(ms)),
        None => (ctx.default_deadline_ms > 0)
            .then(|| received + Duration::from_millis(ctx.default_deadline_ms)),
    };
    // When the request asks for its span tree back, make sure the tracer is
    // collecting (it stays enabled afterwards; the ring is bounded).
    let want_trace = req.get("trace").and_then(Json::as_bool) == Some(true);
    if want_trace && !tilestore_obs::tracer().is_enabled() {
        tilestore_obs::tracer().enable(4096);
    }
    let (tx, rx) = mpsc::channel();
    let job_ctx = ctx.clone();
    let op_owned = op.to_string();
    let req_owned = req.clone();
    ctx.pool.execute(move || {
        let response = if deadline.is_some_and(|d| Instant::now() >= d) {
            job_ctx.deadline_rejections.inc();
            err_response(
                id,
                ErrorCode::Deadline,
                &format!("deadline of {deadline_ms} ms expired before execution"),
            )
        } else {
            // The worker enters the request's trace scope: every span and
            // event below — including tile fetches scattered further onto
            // the pool — carries this request id.
            let _scope = tilestore_obs::request_scope(rid);
            let _span = tilestore_obs::tracer()
                .span_with("request", || format!("op={op_owned} request_id={rid}"));
            handle_request(&job_ctx, id, rid, &op_owned, &req_owned, received)
        };
        job_ctx.inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = tx.send(response);
    });
    let mut response = match rx.recv() {
        Ok(r) => r,
        Err(_) => err_response(id, ErrorCode::Engine, "worker dropped the request"),
    };
    if want_trace {
        let jsonl = tilestore_obs::tracer().take_request_jsonl(rid);
        if let Json::Object(fields) = &mut response {
            fields.push(("trace".to_string(), Json::Str(jsonl)));
        }
    }
    with_request_id(response, rid)
}

/// Executes one admitted request against the shared database.
fn handle_request<S: PageStore>(
    ctx: &ConnCtx<S>,
    id: u64,
    rid: u64,
    op: &str,
    req: &Json,
    received: Instant,
) -> Json {
    match op {
        "ping" => ok_response(id, Json::Str("pong".to_string())),
        "query" => {
            let Some(q) = req.get("q").and_then(Json::as_str) else {
                return err_response(id, ErrorCode::BadRequest, "query needs a `q` string");
            };
            // Queries run against an epoch-stamped snapshot: no lock is held
            // across tile I/O, so a concurrent writer never blocks this
            // request and the response names the epoch it observed. The
            // snapshot carries the request id so engine-side spans (and the
            // scattered tile fetches) stay attributed to this request. A
            // request naming a `pin` executes against that previously pinned
            // snapshot instead — the cluster coordinator's epoch-agreement
            // path, where every shard must answer from the epoch pinned at
            // the consistency point, not from "now".
            let snap = match req.get("pin").and_then(Json::as_u64) {
                Some(pin) => match ctx.pins.get(pin) {
                    Some(s) => s,
                    None => {
                        return err_response(
                            id,
                            ErrorCode::BadRequest,
                            &format!("unknown pin {pin}"),
                        );
                    }
                },
                None => Arc::new(ctx.db.snapshot()),
            };
            snap.set_request_id(rid);
            match tilestore_rasql::execute_statement(&snap, q) {
                Ok(tilestore_rasql::StatementResult::Value(value, stats)) => {
                    observe_slow(ctx, rid, q, snap.epoch(), received, Some(stats));
                    ok_response(id, value_to_json(&value, &stats, snap.epoch()))
                }
                Ok(tilestore_rasql::StatementResult::Explain(report)) => {
                    let stats = report.analyze.as_ref().map(|a| a.stats);
                    observe_slow(ctx, rid, q, snap.epoch(), received, stats);
                    ok_response(id, with_epoch(report.to_json(), snap.epoch()))
                }
                Err(e) => err_response(id, ErrorCode::Engine, &e.to_string()),
            }
        }
        "metrics" => {
            // The full registry with histogram percentiles — the live ops
            // plane behind `tilestore top`.
            ok_response(id, tilestore_obs::metrics().snapshot().to_json())
        }
        "health" => ok_response(id, health_report(ctx)),
        "slow" => {
            let limit = req
                .get("limit")
                .and_then(Json::as_u64)
                .map_or(16, |l| l as usize);
            let entries = ctx
                .slow_log
                .recent(limit)
                .iter()
                .map(ToJson::to_json)
                .collect::<Vec<_>>();
            ok_response(
                id,
                Json::obj(vec![
                    ("threshold_ms", Json::UInt(ctx.slow_log.threshold_ms())),
                    ("count", Json::UInt(ctx.slow_log.len() as u64)),
                    ("entries", Json::Array(entries)),
                ]),
            )
        }
        "insert" => {
            let Some(object) = req.get("object").and_then(Json::as_str) else {
                return err_response(id, ErrorCode::BadRequest, "insert needs an `object`");
            };
            let Some(domain) = req
                .get("domain")
                .and_then(Json::as_str)
                .and_then(|s| s.parse::<Domain>().ok())
            else {
                return err_response(id, ErrorCode::BadRequest, "insert needs a valid `domain`");
            };
            let cells = match req.get("cells_hex").and_then(Json::as_str).map(hex_decode) {
                Some(Ok(c)) => c,
                Some(Err(e)) => {
                    return err_response(id, ErrorCode::BadRequest, &format!("bad cells_hex: {e}"));
                }
                None => {
                    return err_response(id, ErrorCode::BadRequest, "insert needs `cells_hex`");
                }
            };
            let count = domain.cells();
            if count == 0 || cells.is_empty() || !(cells.len() as u64).is_multiple_of(count) {
                return err_response(
                    id,
                    ErrorCode::BadRequest,
                    &format!("{} bytes do not tile {count} cells", cells.len()),
                );
            }
            let cell_size = (cells.len() as u64 / count) as usize;
            let array = match Array::from_bytes(domain, cell_size, cells) {
                Ok(a) => a,
                Err(e) => return err_response(id, ErrorCode::BadRequest, &e.to_string()),
            };
            match ctx.db.insert(object, &array) {
                Ok(receipt) => ok_response(id, with_epoch(receipt.stats.to_json(), receipt.epoch)),
                Err(e) => err_response(id, ErrorCode::Engine, &e.to_string()),
            }
        }
        "retile" => {
            let Some(object) = req.get("object").and_then(Json::as_str) else {
                return err_response(id, ErrorCode::BadRequest, "retile needs an `object`");
            };
            let Some(spec) = req.get("scheme").and_then(Json::as_str) else {
                return err_response(id, ErrorCode::BadRequest, "retile needs a `scheme` spec");
            };
            // Same grammar as the CLI: scheme | --from-log[:..] | --defrag[:..].
            let parsed = match tilestore_tiling::parse_retile_spec(spec) {
                Ok(p) => p,
                Err(e) => return err_response(id, ErrorCode::BadRequest, &e),
            };
            let applied = match parsed {
                tilestore_tiling::RetileSpec::Defrag { budget_bytes } => {
                    defrag_to_retile_stats(&ctx.db, object, budget_bytes)
                }
                tilestore_tiling::RetileSpec::FromLog {
                    distance,
                    frequency,
                    max_tile_bytes,
                } => ctx
                    .db
                    .auto_retile_from_log(object, distance, frequency, max_tile_bytes)
                    .map(|receipt| (receipt.epoch, receipt.stats)),
                tilestore_tiling::RetileSpec::Scheme(_) => {
                    let dim = match ctx.db.object(object).map(|o| o.mdd_type.dim()) {
                        Ok(dim) => dim,
                        Err(e) => return err_response(id, ErrorCode::Engine, &e.to_string()),
                    };
                    let scheme = match tilestore_tiling::parse_scheme_spec(spec, dim) {
                        Ok(s) => s,
                        Err(e) => return err_response(id, ErrorCode::BadRequest, &e),
                    };
                    ctx.db
                        .retile(object, scheme)
                        .map(|receipt| (receipt.epoch, receipt.stats))
                }
            };
            match applied {
                Ok((epoch, stats)) => ok_response(id, with_epoch(stats.to_json(), epoch)),
                Err(e) => err_response(id, ErrorCode::Engine, &e.to_string()),
            }
        }
        "info" => {
            let Some(object) = req.get("object").and_then(Json::as_str) else {
                return err_response(id, ErrorCode::BadRequest, "info needs an `object`");
            };
            // With a `pin`, metadata comes from the pinned snapshot so a
            // coordinator resolving `*` bounds sees the same catalog state
            // its queries will execute against.
            if let Some(pin) = req.get("pin").and_then(Json::as_u64) {
                let Some(snap) = ctx.pins.get(pin) else {
                    return err_response(id, ErrorCode::BadRequest, &format!("unknown pin {pin}"));
                };
                return match snap.object(object) {
                    Ok(o) => ok_response(id, with_epoch(object_info(&o), snap.epoch())),
                    Err(e) => err_response(id, ErrorCode::Engine, &e.to_string()),
                };
            }
            match ctx.db.object(object) {
                Ok(o) => ok_response(id, object_info(&o)),
                Err(e) => err_response(id, ErrorCode::Engine, &e.to_string()),
            }
        }
        "pin" => {
            // The epoch-agreement handshake: pin the current snapshot and
            // report its epoch. The snapshot stays alive (holding its epoch's
            // blobs readable) until `unpin` or the end of this connection.
            let snap = ctx.db.snapshot();
            let epoch = snap.epoch();
            match ctx.pins.insert(snap) {
                Some(pin) => ok_response(
                    id,
                    Json::obj(vec![("pin", Json::UInt(pin)), ("epoch", Json::UInt(epoch))]),
                ),
                None => err_response(
                    id,
                    ErrorCode::Busy,
                    &format!("connection holds {MAX_PINS_PER_CONNECTION} pins (limit)"),
                ),
            }
        }
        "unpin" => {
            let Some(pin) = req.get("pin").and_then(Json::as_u64) else {
                return err_response(id, ErrorCode::BadRequest, "unpin needs a `pin` id");
            };
            if ctx.pins.remove(pin) {
                ok_response(id, Json::Str("unpinned".to_string()))
            } else {
                err_response(id, ErrorCode::BadRequest, &format!("unknown pin {pin}"))
            }
        }
        "stats" => {
            // One snapshot for the whole report: names, metadata and the
            // epoch all describe the same catalog state.
            let snap = ctx.db.snapshot();
            let objects = snap
                .object_names()
                .iter()
                .filter_map(|n| snap.object(n).ok().map(|o| object_info(&o)))
                .collect::<Vec<_>>();
            ok_response(
                id,
                Json::obj(vec![
                    ("objects", Json::Array(objects)),
                    ("io", snap.stats().to_json()),
                    ("metrics", tilestore_obs::metrics().snapshot().to_json()),
                    ("epoch", Json::UInt(snap.epoch())),
                ]),
            )
        }
        "fsck" => {
            let Some(dir) = ctx.dir.as_deref() else {
                return err_response(
                    id,
                    ErrorCode::Engine,
                    "fsck needs a file-backed database directory",
                );
            };
            if let Err(e) = ctx.db.save(dir) {
                return err_response(id, ErrorCode::Engine, &format!("pre-fsck save: {e}"));
            }
            match tilestore_engine::fsck(dir) {
                Ok(report) => ok_response(id, fsck_to_json(&report)),
                Err(e) => err_response(id, ErrorCode::Engine, &e.to_string()),
            }
        }
        other => err_response(id, ErrorCode::BadRequest, &format!("unknown op {other:?}")),
    }
}

/// Feeds one finished statement to the slow-query log.
fn observe_slow<S: PageStore>(
    ctx: &ConnCtx<S>,
    rid: u64,
    statement: &str,
    epoch: u64,
    received: Instant,
    stats: Option<tilestore_engine::QueryStats>,
) {
    let elapsed = received.elapsed();
    ctx.slow_log.observe(
        elapsed,
        SlowQueryEntry {
            request_id: rid,
            statement: statement.to_string(),
            epoch,
            elapsed_ns: elapsed.as_nanos() as u64,
            stats,
        },
    );
}

/// Builds the `health` response: a cheap liveness report (no blob I/O) that
/// surfaces the counters an unhealthy store would move.
fn health_report<S: PageStore>(ctx: &ConnCtx<S>) -> Json {
    let reg = tilestore_obs::metrics();
    let checksum_failures = reg.counter("storage.checksum_failures").get();
    let lock_poisoned = reg.counter("engine.lock_poisoned").get();
    let status = if checksum_failures == 0 && lock_poisoned == 0 {
        "ok"
    } else {
        "degraded"
    };
    let epoch = ctx.db.snapshot().epoch();
    // Read the gauge after the epoch probe's snapshot is dropped so the
    // report does not count its own probe.
    let snapshots_active = reg.gauge("engine.snapshots_active").get();
    Json::obj(vec![
        ("status", Json::Str(status.to_string())),
        ("epoch", Json::UInt(epoch)),
        ("snapshots_active", Json::Int(snapshots_active)),
        (
            "inflight",
            Json::UInt(ctx.inflight.load(Ordering::SeqCst) as u64),
        ),
        ("checksum_failures", Json::UInt(checksum_failures)),
        ("lock_poisoned", Json::UInt(lock_poisoned)),
        ("slow_queries", Json::UInt(ctx.slow_log.len() as u64)),
        ("durable", Json::Bool(ctx.dir.is_some())),
    ])
}

/// Runs `retile --defrag[:<budgetKB>]` for the wire handler, folding a
/// budget-paced step loop into one [`RetileStats`]-shaped report so the
/// response schema matches the other retile verbs.
fn defrag_to_retile_stats<S: PageStore>(
    db: &SharedDatabase<S>,
    object: &str,
    budget_bytes: Option<u64>,
) -> tilestore_engine::Result<(u64, tilestore_engine::RetileStats)> {
    let Some(budget) = budget_bytes else {
        let receipt = db.defrag(object)?;
        return Ok((receipt.epoch, receipt.stats));
    };
    let tiles = db.object(object)?.tiles.len() as u64;
    let mut stats = tilestore_engine::RetileStats {
        tiles_before: tiles,
        tiles_after: tiles,
        ..tilestore_engine::RetileStats::default()
    };
    loop {
        let step = db.defrag_step(object, budget)?;
        stats.bytes_rewritten += step.stats.bytes_moved;
        stats.elapsed_ns = stats.elapsed_ns.saturating_add(step.stats.elapsed_ns);
        if step.stats.tiles_remaining == 0 {
            return Ok((step.epoch, stats));
        }
    }
}

/// Serializes an object's metadata for `info`/`stats` responses.
fn object_info(o: &tilestore_engine::MddObject) -> Json {
    Json::obj(vec![
        ("name", Json::Str(o.name.clone())),
        ("cell_size", Json::UInt(o.cell_size() as u64)),
        (
            "current_domain",
            o.current_domain
                .as_ref()
                .map_or(Json::Null, |d| Json::Str(d.to_string())),
        ),
        ("tiles", Json::UInt(o.tiles.len() as u64)),
        ("covered_cells", Json::UInt(o.covered_cells())),
        ("scheme", o.scheme.to_json()),
        // Additive: the full MDD type, so a cluster coordinator resolving
        // queries against remote shards knows the cell type (and its
        // default value) without a second protocol round.
        ("mdd_type", o.mdd_type.to_json()),
    ])
}

/// Serializes an fsck report (the engine type predates the wire layer and
/// carries no `ToJson` of its own).
fn fsck_to_json(r: &tilestore_engine::FsckReport) -> Json {
    Json::obj(vec![
        ("epoch", Json::UInt(r.epoch)),
        ("objects", Json::UInt(r.objects)),
        ("blobs", Json::UInt(r.blobs)),
        ("allocated_pages", Json::UInt(r.allocated_pages)),
        ("free_pages", Json::UInt(r.free_pages)),
        ("orphaned_pages", r.orphaned_pages.to_json()),
        ("dangling_pages", r.dangling_pages.to_json()),
        ("duplicated_pages", r.duplicated_pages.to_json()),
        ("unreadable_blobs", r.unreadable_blobs.to_json()),
        (
            "missing_tile_blobs",
            Json::Array(
                r.missing_tile_blobs
                    .iter()
                    .map(|(o, b)| {
                        Json::obj(vec![
                            ("object", Json::Str(o.clone())),
                            ("blob", Json::UInt(*b)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("stale_tmp", Json::Bool(r.stale_tmp)),
        ("clean", Json::Bool(r.is_clean())),
    ])
}
