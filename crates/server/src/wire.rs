//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [u32 little-endian payload length][payload: compact JSON, UTF-8]
//! ```
//!
//! Requests are objects `{"id": n, "op": "...", ...}` with an optional
//! `"deadline_ms"` budget. Responses echo the id:
//! `{"id": n, "ok": true, "result": ...}` on success,
//! `{"id": n, "ok": false, "error": "<code>", "message": "..."}` on failure,
//! where `<code>` is one of the [`ErrorCode`] names. Array payloads travel
//! hex-encoded (`cells_hex`) so results compare byte-identically across the
//! in-process and remote paths and the framing stays pure UTF-8 JSON.

use std::io::{Read, Write};

use tilestore_engine::QueryStats;
use tilestore_rasql::Value;
use tilestore_testkit::{Json, ToJson};

/// Upper bound on a frame payload (64 MiB): one query result over the wire.
/// Larger frames are rejected instead of letting a corrupt length prefix
/// trigger an absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Typed failure classes a response can carry. Clients match on these to
/// distinguish "retry later" ([`ErrorCode::Busy`]) from "this request is
/// wrong" ([`ErrorCode::BadRequest`]) without parsing message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue is full; retry after backoff.
    Busy,
    /// The request's deadline expired before execution started.
    Deadline,
    /// The request was malformed (unknown op, missing/invalid fields).
    BadRequest,
    /// The engine rejected or failed the operation.
    Engine,
    /// The server is shutting down and no longer accepts work.
    Shutdown,
    /// A cluster coordinator could not reach one of its shards; the message
    /// names the failed shard. Typed so a partial failure surfaces as a
    /// prompt, identifiable error instead of a hung request.
    ShardUnavailable,
}

impl ErrorCode {
    /// The wire name of this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Deadline => "deadline",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Engine => "engine",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::ShardUnavailable => "shard_unavailable",
        }
    }

    /// Parses a wire name back into a code.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "busy" => ErrorCode::Busy,
            "deadline" => ErrorCode::Deadline,
            "bad_request" => ErrorCode::BadRequest,
            "engine" => ErrorCode::Engine,
            "shutdown" => ErrorCode::Shutdown,
            "shard_unavailable" => ErrorCode::ShardUnavailable,
            _ => return None,
        })
    }
}

/// Writes one frame.
///
/// # Errors
/// I/O errors from the underlying stream; `InvalidInput` for an oversized
/// payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("MAX_FRAME fits in u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` signals a clean end of stream (the peer
/// closed between frames).
///
/// # Errors
/// I/O errors; `InvalidData` for an oversized length prefix;
/// `UnexpectedEof` for a stream cut mid-frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Both hex digits of every byte value, precomputed so [`hex_encode`] is one
/// table load and one two-byte store per input byte instead of two
/// nibble-shift/char-push round trips. Array tiles ship as hex on the wire,
/// so this runs over the full payload of every array response.
const HEX_PAIRS: [[u8; 2]; 256] = {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut t = [[0u8; 2]; 256];
    let mut b = 0usize;
    while b < 256 {
        t[b] = [DIGITS[b >> 4], DIGITS[b & 0xf]];
        b += 1;
    }
    t
};

/// Value of every ASCII hex digit, or `0xFF` for non-digits, so
/// [`hex_decode`]'s per-pair work is two loads and a range check.
const HEX_VALUES: [u8; 256] = {
    let mut t = [0xFFu8; 256];
    let mut b = 0usize;
    while b < 256 {
        t[b] = match b as u8 {
            c @ b'0'..=b'9' => c - b'0',
            c @ b'a'..=b'f' => c - b'a' + 10,
            c @ b'A'..=b'F' => c - b'A' + 10,
            _ => 0xFF,
        };
        b += 1;
    }
    t
};

/// Hex-encodes bytes (lowercase, two digits per byte).
#[must_use]
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = vec![0u8; bytes.len() * 2];
    for (pair, &b) in out.chunks_exact_mut(2).zip(bytes) {
        pair.copy_from_slice(&HEX_PAIRS[b as usize]);
    }
    String::from_utf8(out).expect("hex digits are ASCII")
}

/// Decodes a hex string produced by [`hex_encode`].
///
/// # Errors
/// A message naming the offending character or an odd length.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("hex string has odd length {}", s.len()));
    }
    let bytes = s.as_bytes();
    let mut out = vec![0u8; bytes.len() / 2];
    // Valid digit values fit in the low nibble, so a running OR keeps the
    // high bit clear exactly when every digit was valid — one branch per
    // call instead of one per pair; the offender is re-found only on error.
    let mut acc = 0u8;
    for (b, pair) in out.iter_mut().zip(bytes.chunks_exact(2)) {
        let (hi, lo) = (HEX_VALUES[pair[0] as usize], HEX_VALUES[pair[1] as usize]);
        acc |= hi | lo;
        *b = (hi << 4) | lo;
    }
    if acc & 0x80 != 0 {
        let bad = bytes
            .iter()
            .find(|&&c| HEX_VALUES[c as usize] == 0xFF)
            .expect("a bad digit set the accumulator");
        return Err(format!("bad hex digit {:?}", *bad as char));
    }
    Ok(out)
}

/// Builds a success response.
#[must_use]
pub fn ok_response(id: u64, result: Json) -> Json {
    Json::obj(vec![
        ("id", Json::UInt(id)),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
}

/// Builds a failure response.
#[must_use]
pub fn err_response(id: u64, code: ErrorCode, message: &str) -> Json {
    Json::obj(vec![
        ("id", Json::UInt(id)),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(code.as_str().to_string())),
        ("message", Json::Str(message.to_string())),
    ])
}

/// Stamps the catalog epoch a response was produced at into an object
/// payload. The field is additive: clients that predate snapshot reads
/// ignore keys they do not know.
#[must_use]
pub fn with_epoch(mut json: Json, epoch: u64) -> Json {
    if let Json::Object(fields) = &mut json {
        fields.push(("epoch".to_string(), Json::UInt(epoch)));
    }
    json
}

/// Tags a response with the server-assigned request id. The field is
/// additive and sits beside `id`/`ok`/`result`, so payload comparisons on
/// `result` (e.g. the golden wire-vs-inprocess corpus) are unaffected and
/// older clients simply ignore it.
#[must_use]
pub fn with_request_id(mut json: Json, request_id: u64) -> Json {
    if let Json::Object(fields) = &mut json {
        fields.push(("request_id".to_string(), Json::UInt(request_id)));
    }
    json
}

/// Serializes a rasql result value (with its execution stats and the
/// snapshot epoch it observed) for the wire. Array cells travel hex-encoded
/// so the remote bytes are exactly the in-process bytes.
#[must_use]
pub fn value_to_json(value: &Value, stats: &QueryStats, epoch: u64) -> Json {
    let v = match value {
        Value::Array(a) => Json::obj(vec![
            ("kind", Json::Str("array".to_string())),
            ("domain", Json::Str(a.domain().to_string())),
            ("cell_size", Json::UInt(a.cell_size() as u64)),
            ("cells_hex", Json::Str(hex_encode(a.bytes()))),
        ]),
        Value::Number(n) => Json::obj(vec![
            ("kind", Json::Str("number".to_string())),
            // Bit-exact transport: JSON floats round-trip through decimal,
            // so ship the IEEE-754 bits alongside the readable value.
            ("bits", Json::UInt(n.to_bits())),
            ("value", Json::Float(*n)),
        ]),
        Value::Count(c) => Json::obj(vec![
            ("kind", Json::Str("count".to_string())),
            ("value", Json::UInt(*c)),
        ]),
        Value::Bool(b) => Json::obj(vec![
            ("kind", Json::Str("bool".to_string())),
            ("value", Json::Bool(*b)),
        ]),
    };
    Json::obj(vec![
        ("value", v),
        ("stats", stats.to_json()),
        ("epoch", Json::UInt(epoch)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(7);
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn hex_round_trips() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        assert_eq!(hex_decode("00ff10").unwrap(), vec![0, 255, 16]);
    }

    #[test]
    fn hex_decode_names_the_first_bad_digit() {
        // The table-driven decoder defers validation to one accumulator
        // check; the error must still point at the offending character.
        assert_eq!(hex_decode("00g0").unwrap_err(), "bad hex digit 'g'");
        assert_eq!(hex_decode("0G").unwrap_err(), "bad hex digit 'G'");
        assert!(hex_decode("ABCDEF").is_ok(), "uppercase digits decode");
        assert_eq!(hex_decode("aAbB").unwrap(), vec![0xAA, 0xBB]);
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Busy,
            ErrorCode::Deadline,
            ErrorCode::BadRequest,
            ErrorCode::Engine,
            ErrorCode::Shutdown,
            ErrorCode::ShardUnavailable,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }
}
