//! The live ops plane: `metrics`, `health` and `slow` over the wire, plus
//! request-id echo and per-request trace export.

use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_server::{serve, Client, ServerConfig};
use tilestore_testkit::Json;
use tilestore_tiling::{AlignedTiling, Scheme};

fn grid_db() -> Database<tilestore_storage::MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "grid",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 256)),
    )
    .unwrap();
    db.insert(
        "grid",
        &Array::from_fn("[0:15,0:15]".parse().unwrap(), |p| {
            (p[0] * 16 + p[1]) as u32
        })
        .unwrap(),
    )
    .unwrap();
    db
}

#[test]
fn metrics_health_and_slow_log_are_live_over_the_wire() {
    let handle = serve(
        SharedDatabase::new(grid_db()),
        None,
        "127.0.0.1:0",
        ServerConfig {
            // Threshold 0: every statement lands in the slow-query log, so
            // the test observes entries deterministically.
            slow_query_ms: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Request ids are echoed on every response and increase monotonically
    // for server-assigned ids.
    client.ping().unwrap();
    let first = client.last_request_id();
    assert!(first > 0, "ping response lacks a request id");
    client.ping().unwrap();
    assert!(client.last_request_id() > first);

    // Run a query, then check all three ops observe it.
    let stmt = "SELECT count_cells(grid) FROM grid WHERE grid > 200";
    client.query(stmt).unwrap();
    let query_rid = client.last_request_id();

    let metrics = client.metrics().unwrap();
    let queries = metrics
        .get("counters")
        .and_then(|c| c.get("engine.queries"))
        .and_then(Json::as_u64)
        .expect("metrics carry engine.queries");
    assert!(queries >= 1, "engine.queries = {queries}");
    // Histogram snapshots expose the percentile shape.
    let latency = metrics
        .get("histograms")
        .and_then(|h| h.get("engine.query_latency_ns"))
        .expect("metrics carry the query latency histogram");
    for key in ["p50", "p95", "p99", "count", "mean"] {
        assert!(latency.get(key).is_some(), "{key} missing from {latency:?}");
    }

    let health = client.health().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert!(health.get("epoch").and_then(Json::as_u64).is_some());
    assert!(health.get("snapshots_active").is_some());
    assert_eq!(
        health.get("checksum_failures").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(health.get("durable").and_then(Json::as_bool), Some(false));

    let slow = client.slow_queries(8).unwrap();
    assert_eq!(slow.get("threshold_ms").and_then(Json::as_u64), Some(0));
    let entries = match slow.get("entries") {
        Some(Json::Array(items)) => items.clone(),
        other => panic!("slow entries missing: {other:?}"),
    };
    assert!(!entries.is_empty());
    // Newest first; the query we just ran is in there with its request id,
    // statement, epoch and stats.
    let ours = entries
        .iter()
        .find(|e| e.get("request_id").and_then(Json::as_u64) == Some(query_rid))
        .unwrap_or_else(|| panic!("no slow entry for request {query_rid}: {entries:?}"));
    assert_eq!(ours.get("statement").and_then(Json::as_str), Some(stmt));
    assert!(ours.get("epoch").and_then(Json::as_u64).is_some());
    assert!(
        ours.get("stats")
            .and_then(|s| s.get("tiles_read"))
            .and_then(Json::as_u64)
            .is_some(),
        "slow entry carries executor stats"
    );
    handle.shutdown();
}

#[test]
fn client_supplied_request_ids_are_honored_and_traces_export() {
    let handle = serve(
        SharedDatabase::new(grid_db()),
        None,
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();

    // Raw frames so the test controls the request object exactly.
    use std::io::{BufReader, BufWriter};
    use std::net::TcpStream;
    use tilestore_server::wire::{read_frame, write_frame};
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut w = BufWriter::new(stream);
    let mut call = |payload: &str| -> Json {
        write_frame(&mut w, payload.as_bytes()).unwrap();
        let frame = read_frame(&mut r).unwrap().unwrap();
        Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap()
    };

    // A nonzero client-supplied request id is kept and echoed.
    let resp = call(r#"{"id":1,"op":"ping","request_id":777001}"#);
    assert_eq!(resp.get("request_id").and_then(Json::as_u64), Some(777001));

    // `trace: true` returns the request's span tree as JSONL, tagged with
    // the request id.
    let resp = call(
        r#"{"id":2,"op":"query","q":"SELECT grid FROM grid WHERE grid > 200","request_id":777002,"trace":true}"#,
    );
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let trace = resp
        .get("trace")
        .and_then(Json::as_str)
        .expect("response carries trace JSONL");
    let mut saw_query_span = false;
    for line in trace.lines() {
        let event = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        assert_eq!(
            event.get("req").and_then(Json::as_u64),
            Some(777002),
            "{line}"
        );
        if event.get("name").and_then(Json::as_str) == Some("query") {
            saw_query_span = true;
        }
    }
    assert!(saw_query_span, "trace lacks the engine query span: {trace}");

    // A later untraced request from another id does not inherit the events.
    let resp = call(r#"{"id":3,"op":"ping"}"#);
    assert!(resp.get("trace").is_none());
    handle.shutdown();
}
