//! Golden equivalence: every rasql statement answered over the wire must be
//! byte-identical (arrays) or bit-identical (scalars) to the in-process
//! result. The in-process baseline runs serially *before* the server
//! attaches its executor, so this also pins the parallel query path to the
//! serial one.

use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_rasql::{StatementResult, Value};
use tilestore_server::{serve, Client, RemoteValue, ServerConfig};
use tilestore_testkit::{Json, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// The statement corpus: every result kind, trims, sections, wildcard
/// ranges, induced operations, aggregates.
const GOLDEN: &[&str] = &[
    "SELECT cube FROM cube",
    "SELECT cube[2:4, 0:9, 5:7] FROM cube",
    "SELECT cube[*:*, 3:3, 2:*] FROM cube",
    "SELECT cube[5, *, 2:3] FROM cube",
    "SELECT sum_cells(cube[0:3, 0:3, 0:3]) FROM cube",
    "SELECT avg_cells(cube[1:2, 1:2, 1:2]) FROM cube",
    "SELECT max_cells(cube) FROM cube",
    "SELECT min_cells(cube[4:9, 0:5, 1:8]) FROM cube",
    "SELECT count_cells(cube > 500) FROM cube",
    "SELECT some_cells(cube > 980) FROM cube",
    "SELECT all_cells(cube >= 0) FROM cube",
    "SELECT cube[0:0, 0:0, 0:3] + 1000 FROM cube",
    "SELECT cube[0:0, 0:0, *] > 4 FROM cube",
    "SELECT cube[0:0, 1:1, 0:2] * 2 - 10 FROM cube",
    "SELECT cube[5, *, *] + 0.0 FROM cube",
    "SELECT sum_cells(cube[0:0, 0:0, *] >= 5) FROM cube",
    // WHERE value predicates: masked reads and pruned aggregates.
    "SELECT cube FROM cube WHERE cube > 900",
    "SELECT cube[2:4, 0:9, 5:7] FROM cube WHERE cube <= 300",
    "SELECT cube[0:0, 0:0, *] + 1 FROM cube WHERE cube >= 5",
    "SELECT count_cells(cube) FROM cube WHERE cube > 500",
    "SELECT sum_cells(cube) FROM cube WHERE cube >= 998",
    "SELECT max_cells(cube) FROM cube WHERE cube < 100",
    "SELECT min_cells(cube[4:9, 0:5, 1:8]) FROM cube WHERE cube != 455",
    "SELECT some_cells(cube) FROM cube WHERE cube > 2000",
    "SELECT all_cells(cube) FROM cube WHERE cube = 7",
];

fn cube_db() -> Database<tilestore_storage::MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "cube",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(3, 2048)),
    )
    .unwrap();
    let cells = Array::from_fn("[0:9,0:9,0:9]".parse().unwrap(), |p| {
        (p[0] * 100 + p[1] * 10 + p[2]) as u32
    })
    .unwrap();
    db.insert("cube", &cells).unwrap();
    db
}

#[test]
fn every_statement_is_byte_identical_over_the_wire() {
    let db = cube_db();
    // In-process baseline, serial path (no executor attached yet).
    let expected: Vec<Value> = GOLDEN
        .iter()
        .map(|q| tilestore_rasql::execute(&db.begin_read(), q).unwrap().0)
        .collect();

    let shared = SharedDatabase::new(db);
    let handle = serve(
        shared,
        None,
        "127.0.0.1:0",
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    for (q, want) in GOLDEN.iter().zip(&expected) {
        let got = client.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        match (want, &got) {
            (
                Value::Array(a),
                RemoteValue::Array {
                    domain,
                    cell_size,
                    cells,
                },
            ) => {
                assert_eq!(domain, a.domain(), "{q}: domain");
                assert_eq!(*cell_size, a.cell_size(), "{q}: cell size");
                assert_eq!(cells, a.bytes(), "{q}: cell bytes");
            }
            (Value::Number(n), RemoteValue::Number(m)) => {
                assert_eq!(n.to_bits(), m.to_bits(), "{q}: number bits");
            }
            (Value::Count(c), RemoteValue::Count(d)) => assert_eq!(c, d, "{q}: count"),
            (Value::Bool(b), RemoteValue::Bool(c)) => assert_eq!(b, c, "{q}: bool"),
            (want, got) => panic!("{q}: kind mismatch: {want:?} vs {got:?}"),
        }
    }
    handle.shutdown();
}

/// EXPLAIN-able subset of the corpus: plain accesses and condensers over
/// one (induced expressions carry no tile plan).
const GOLDEN_EXPLAIN: &[&str] = &[
    "SELECT cube FROM cube",
    "SELECT cube[2:4, 0:9, 5:7] FROM cube",
    "SELECT max_cells(cube) FROM cube",
    "SELECT cube FROM cube WHERE cube > 900",
    "SELECT count_cells(cube) FROM cube WHERE cube > 500",
    "SELECT sum_cells(cube) FROM cube WHERE cube >= 998",
    "SELECT min_cells(cube[4:9, 0:5, 1:8]) FROM cube WHERE cube != 455",
];

#[test]
fn explain_plans_match_in_process_and_reconcile_with_execution() {
    let db = cube_db();
    // In-process baseline plans, before the server attaches its executor.
    let expected: Vec<String> = GOLDEN_EXPLAIN
        .iter()
        .map(|q| {
            let snap = db.begin_read();
            let StatementResult::Explain(report) =
                tilestore_rasql::execute_statement(&snap, &format!("EXPLAIN {q}")).unwrap()
            else {
                panic!("{q}: expected explain result");
            };
            report.plan.to_json().to_string_compact()
        })
        .collect();

    let shared = SharedDatabase::new(db);
    let handle = serve(
        shared,
        None,
        "127.0.0.1:0",
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    for (q, want) in GOLDEN_EXPLAIN.iter().zip(&expected) {
        let got = client
            .explain(q, false)
            .unwrap_or_else(|e| panic!("{q}: {e}"));
        let plan = got.get("plan").unwrap_or_else(|| panic!("{q}: no plan"));
        assert_eq!(
            plan.to_string_compact(),
            *want,
            "{q}: wire plan differs from in-process plan"
        );
        assert!(got.get("analyze").is_none(), "{q}: plain EXPLAIN executes");
        assert!(
            client.last_request_id() > 0,
            "{q}: response lacks request id"
        );

        // ANALYZE executes: the measured counters must reconcile with the
        // plan the same response carries.
        let got = client
            .explain(q, true)
            .unwrap_or_else(|e| panic!("{q}: {e}"));
        let plan = got.get("plan").unwrap();
        let fetched = plan.get("fetched").and_then(Json::as_u64).unwrap();
        let pruned = plan.get("pruned").and_then(Json::as_u64).unwrap();
        let stats = got
            .get("analyze")
            .and_then(|a| a.get("stats"))
            .unwrap_or_else(|| panic!("{q}: analyze carries no stats"));
        assert_eq!(
            stats.get("tiles_read").and_then(Json::as_u64),
            Some(fetched),
            "{q}: tiles_read != plan.fetched"
        );
        assert_eq!(
            stats.get("tiles_pruned").and_then(Json::as_u64),
            Some(pruned),
            "{q}: tiles_pruned != plan.pruned"
        );
    }
    handle.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_not_disconnects() {
    let shared = SharedDatabase::new(cube_db());
    let handle = serve(shared, None, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let e = client.query("SELECT nothing FROM nowhere").unwrap_err();
    assert!(matches!(e, tilestore_server::ClientError::Engine(_)), "{e}");
    let e = client.retile("cube", "bogus:spec").unwrap_err();
    assert!(
        matches!(e, tilestore_server::ClientError::BadRequest(_)),
        "{e}"
    );
    let e = client.info("missing").unwrap_err();
    assert!(matches!(e, tilestore_server::ClientError::Engine(_)), "{e}");
    // The connection survived all of that.
    client.ping().unwrap();
    handle.shutdown();
}

#[test]
fn pinned_epoch_predicate_results_survive_concurrent_retile() {
    // A read session pinned before a retile must keep answering value-
    // predicate queries from its own epoch's tiles, synopses and bitmap
    // index — byte-identically — while the server rewrites the object.
    let shared = SharedDatabase::new(cube_db());
    let handle = serve(shared.clone(), None, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let q = "SELECT cube FROM cube WHERE cube > 500";
    let pinned = shared.snapshot();
    let before = tilestore_rasql::execute(&pinned, q).unwrap().0;
    client.retile("cube", "aligned:[*,*,1]:4").unwrap();
    let after = tilestore_rasql::execute(&pinned, q).unwrap().0;
    match (&before, &after) {
        (Value::Array(a), Value::Array(b)) => {
            assert_eq!(a.domain(), b.domain());
            assert_eq!(a.bytes(), b.bytes(), "pinned epoch changed under retile");
        }
        other => panic!("expected arrays, got {other:?}"),
    }
    // A fresh snapshot over the retiled tiles holds the same cells, and
    // the aggregate agrees across epochs too.
    let fresh = tilestore_rasql::execute(&shared.snapshot(), q).unwrap().0;
    assert_eq!(before, fresh);
    let agg = "SELECT count_cells(cube) FROM cube WHERE cube > 500";
    let a = tilestore_rasql::execute(&pinned, agg).unwrap().0;
    let b = tilestore_rasql::execute(&shared.snapshot(), agg).unwrap().0;
    assert_eq!(a, Value::Count(499));
    assert_eq!(a, b);
    handle.shutdown();
}

/// Strict byte/bit identity between two statement results.
fn assert_values_identical(q: &str, want: &Value, got: &Value) {
    match (want, got) {
        (Value::Array(a), Value::Array(b)) => {
            assert_eq!(a.domain(), b.domain(), "{q}: domain");
            assert_eq!(a.bytes(), b.bytes(), "{q}: cell bytes");
        }
        (Value::Number(n), Value::Number(m)) => {
            assert_eq!(n.to_bits(), m.to_bits(), "{q}: number bits");
        }
        (want, got) => assert_eq!(want, got, "{q}"),
    }
}

#[test]
fn defrag_keeps_every_golden_statement_byte_identical_with_clean_fsck() {
    // `retile --defrag` copies tile payloads byte-for-byte onto contiguous
    // pages; the whole corpus must answer identically afterwards, and the
    // page file must audit clean (no orphaned, dangling or duplicated
    // pages from the placement swap).
    let dir = tilestore_testkit::tempdir().unwrap();
    let db = tilestore_engine::DatabaseBuilder::new()
        .create_dir(dir.path())
        .unwrap();
    db.create_object(
        "cube",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(3, 2048)),
    )
    .unwrap();
    // Back half before front half, so physical page order disagrees with
    // the centroid curve and the defrag has real work to do.
    for lo in [5i64, 0] {
        let dom = format!("[{lo}:{},0:9,0:9]", lo + 4).parse().unwrap();
        let cells = Array::from_fn(dom, |p| (p[0] * 100 + p[1] * 10 + p[2]) as u32).unwrap();
        db.insert("cube", &cells).unwrap();
    }
    let before: Vec<Value> = GOLDEN
        .iter()
        .map(|q| tilestore_rasql::execute(&db.begin_read(), q).unwrap().0)
        .collect();

    let receipt = db.defrag("cube").unwrap();
    assert!(
        receipt.stats.bytes_rewritten > 0,
        "scattered cube must be rewritten"
    );
    for (q, want) in GOLDEN.iter().zip(&before) {
        let got = tilestore_rasql::execute(&db.begin_read(), q).unwrap().0;
        assert_values_identical(q, want, &got);
    }

    // A budget-paced step on the now-clean object converges immediately.
    let step = db.defrag_step("cube", 1024).unwrap();
    assert_eq!(step.stats.tiles_remaining, 0);
    for (q, want) in GOLDEN.iter().zip(&before) {
        let got = tilestore_rasql::execute(&db.begin_read(), q).unwrap().0;
        assert_values_identical(q, want, &got);
    }

    db.save(dir.path()).unwrap();
    let report = tilestore_engine::fsck(dir.path()).unwrap();
    assert!(report.is_clean(), "post-defrag fsck: {report}");
}

#[test]
fn remote_defrag_preserves_query_results() {
    // The wire handler shares the retile grammar: a full defrag and a
    // budget-paced one, both answering identically afterwards.
    let shared = SharedDatabase::new(cube_db());
    let handle = serve(shared, None, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let q = "SELECT cube[1:8, 2:7, 0:9] FROM cube";
    let before = client.query(q).unwrap();
    let resp = client.retile("cube", "--defrag").unwrap();
    assert!(resp.get("bytes_rewritten").is_some(), "{resp}");
    assert_eq!(before, client.query(q).unwrap());
    // Paced: loops server-side until `tiles_remaining == 0`.
    client.retile("cube", "--defrag:1").unwrap();
    assert_eq!(before, client.query(q).unwrap());
    // And the unsupported verbs still fail typed, not with a disconnect.
    let e = client.retile("cube", "--defragx").unwrap_err();
    assert!(
        matches!(e, tilestore_server::ClientError::BadRequest(_)),
        "{e}"
    );
    client.ping().unwrap();
    handle.shutdown();
}

#[test]
fn remote_retile_preserves_query_results() {
    let shared = SharedDatabase::new(cube_db());
    let handle = serve(shared, None, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let before = client
        .query("SELECT cube[1:8, 2:7, 0:9] FROM cube")
        .unwrap();
    client.retile("cube", "aligned:[*,*,1]:4").unwrap();
    let after = client
        .query("SELECT cube[1:8, 2:7, 0:9] FROM cube")
        .unwrap();
    assert_eq!(before, after);

    let info = client.info("cube").unwrap();
    assert_eq!(
        info.get("covered_cells").and_then(|j| j.as_u64()),
        Some(1000)
    );
    handle.shutdown();
}
