//! Transparent reconnect-with-backoff: a [`Client`] with a [`RetryPolicy`]
//! rides out `busy` responses and dropped connections against a flapping
//! loopback server; without a policy the same failures surface immediately.

use std::io::{BufReader, BufWriter};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tilestore_server::wire::{err_response, ok_response, read_frame, write_frame, ErrorCode};
use tilestore_server::{Client, ClientError, RetryPolicy};
use tilestore_testkit::Json;

/// A hand-rolled frame server that misbehaves on purpose. For each
/// accepted connection it serves requests; the shared `failures` counter
/// decides how the next request is (mis)treated.
enum Flap {
    /// Answer `busy` while failures remain, then answer normally.
    Busy,
    /// Drop the connection (mid-request) while failures remain.
    Drop,
}

fn flapping_server(mode: Flap, failures: u32) -> (std::net::SocketAddr, Arc<AtomicU32>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let remaining = Arc::new(AtomicU32::new(failures));
    let served = Arc::clone(&remaining);
    thread::spawn(move || {
        // Serve connections until the test process exits; each connection
        // handles frames sequentially like the real server.
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            stream.set_nodelay(true).ok();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                let req = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
                let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
                let fail = served
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok();
                if fail {
                    match mode {
                        Flap::Busy => {
                            let resp = err_response(id, ErrorCode::Busy, "simulated overload");
                            write_frame(&mut writer, resp.to_string_compact().as_bytes()).unwrap();
                            continue;
                        }
                        // Kill the connection without answering: the client
                        // sees a reset (or a clean close mid-request).
                        Flap::Drop => break,
                    }
                }
                let resp = ok_response(id, Json::Str("pong".to_string()));
                write_frame(&mut writer, resp.to_string_compact().as_bytes()).unwrap();
            }
        }
    });
    (addr, remaining)
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 5,
        base_delay_ms: 2,
        max_delay_ms: 20,
        seed: 0xDEAD_BEEF,
    }
}

#[test]
fn busy_responses_are_retried_with_backoff() {
    let (addr, remaining) = flapping_server(Flap::Busy, 3);
    let mut client = Client::connect(addr).unwrap();
    client.set_retry(Some(fast_policy()));
    let started = Instant::now();
    client
        .ping()
        .expect("retries should ride out 3 busy responses");
    // Three retries with jittered exponential backoff take a measurable,
    // bounded amount of time: at least base/2 * (1+2+4), at most the cap.
    assert!(started.elapsed() >= Duration::from_millis(3));
    assert!(started.elapsed() < Duration::from_secs(2));
    assert_eq!(remaining.load(Ordering::SeqCst), 0);
    // The connection is healthy afterwards.
    client.ping().unwrap();
}

#[test]
fn dropped_connections_trigger_reconnect() {
    let (addr, _) = flapping_server(Flap::Drop, 2);
    let mut client = Client::connect(addr).unwrap();
    client.set_retry(Some(fast_policy()));
    // Two consecutive drops (each on a fresh connection) are absorbed by
    // reconnect-and-retry; the third attempt succeeds.
    client
        .ping()
        .expect("reconnect should ride out dropped connections");
    client.ping().unwrap();
}

#[test]
fn without_a_policy_failures_surface_immediately() {
    let (addr, _) = flapping_server(Flap::Busy, 1);
    let mut client = Client::connect(addr).unwrap();
    match client.ping() {
        Err(ClientError::Busy(_)) => {}
        other => panic!("expected busy, got {other:?}"),
    }

    let (addr, _) = flapping_server(Flap::Drop, 1);
    let mut client = Client::connect(addr).unwrap();
    match client.ping() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected io, got {other:?}"),
    }
}

#[test]
fn retries_are_bounded_by_the_policy() {
    // More failures than max_retries: the final error surfaces unchanged.
    let (addr, remaining) = flapping_server(Flap::Busy, 100);
    let mut client = Client::connect(addr).unwrap();
    client.set_retry(Some(fast_policy()));
    match client.ping() {
        Err(ClientError::Busy(_)) => {}
        other => panic!("expected busy after exhausting retries, got {other:?}"),
    }
    // 1 initial attempt + 5 retries.
    assert_eq!(remaining.load(Ordering::SeqCst), 100 - 6);
}
