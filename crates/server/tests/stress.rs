//! The acceptance stress test: one file-backed database served to many
//! concurrent clients issuing overlapping range queries, with interleaved
//! inserts and a re-tile in the middle, under a small admission limit so
//! typed `busy` responses actually occur. Every response must be correct or
//! a typed BUSY/DEADLINE, the server must shut down gracefully, and the
//! database directory must fsck clean afterwards.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_server::{serve, Client, ClientError, RemoteValue, ServerConfig};
use tilestore_testkit::tempdir;
use tilestore_tiling::{AlignedTiling, Scheme};

/// Cell formula for the grid object; queries verify every byte against it.
fn cell(p0: i64, p1: i64) -> u32 {
    (p0 * 1000 + p1) as u32
}

fn retry_busy<T>(mut f: impl FnMut() -> Result<T, ClientError>) -> Result<T, ClientError> {
    loop {
        match f() {
            Err(ClientError::Busy(_)) => std::thread::sleep(Duration::from_millis(2)),
            other => return other,
        }
    }
}

#[test]
fn concurrent_clients_with_inserts_and_a_retile() {
    let dir = tempdir().unwrap();
    let db = Database::create_dir(dir.path()).unwrap();
    db.create_object(
        "grid",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 2048)),
    )
    .unwrap();
    // The immutable region every reader checks against; later inserts only
    // extend axis 0 beyond it.
    db.insert(
        "grid",
        &Array::from_fn("[0:63,0:63]".parse().unwrap(), |p| cell(p[0], p[1])).unwrap(),
    )
    .unwrap();
    let shared = SharedDatabase::new(db);
    let handle = serve(
        shared,
        Some(dir.path().to_path_buf()),
        "127.0.0.1:0",
        ServerConfig {
            workers: 3,
            max_inflight: 4, // small on purpose: admission refusals must occur
            default_deadline_ms: 30_000,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let busy_seen = AtomicU64::new(0);
    let queries_ok = AtomicU64::new(0);
    std::thread::scope(|s| {
        // 8 readers, each its own connection, overlapping windows inside
        // the immutable region, every byte checked.
        for t in 0..8i64 {
            let busy_seen = &busy_seen;
            let queries_ok = &queries_ok;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..30i64 {
                    let lo0 = (t * 7 + i) % 40;
                    let lo1 = (t * 11 + i * 3) % 40;
                    let (hi0, hi1) = (lo0 + 20, lo1 + 20);
                    let q = format!("SELECT grid[{lo0}:{hi0}, {lo1}:{hi1}] FROM grid");
                    let got = loop {
                        match client.query(&q) {
                            Ok(v) => break v,
                            Err(ClientError::Busy(_)) => {
                                busy_seen.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(e) => panic!("{q}: {e}"),
                        }
                    };
                    let RemoteValue::Array {
                        domain,
                        cell_size,
                        cells,
                    } = got
                    else {
                        panic!("{q}: expected an array result");
                    };
                    assert_eq!(cell_size, 4);
                    assert_eq!(domain.to_string(), format!("[{lo0}:{hi0},{lo1}:{hi1}]"));
                    let mut k = 0;
                    for p0 in lo0..=hi0 {
                        for p1 in lo1..=hi1 {
                            let got = u32::from_ne_bytes(cells[k..k + 4].try_into().unwrap());
                            assert_eq!(got, cell(p0, p1), "{q}: cell ({p0},{p1})");
                            k += 4;
                        }
                    }
                    queries_ok.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // One writer: five disjoint strips beyond the immutable region,
        // with a re-tile between the second and third.
        s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for i in 0..5i64 {
                let lo = 64 + i * 8;
                let strip =
                    Array::from_fn(format!("[{lo}:{},0:63]", lo + 7).parse().unwrap(), |p| {
                        cell(p[0], p[1])
                    })
                    .unwrap();
                retry_busy(|| client.insert("grid", &strip)).unwrap();
                if i == 2 {
                    retry_busy(|| client.retile("grid", "aligned:[*,1]:16")).unwrap();
                }
            }
        });
        // One probe: a zero-budget request must be refused with a typed
        // DEADLINE, never executed.
        s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.set_deadline_ms(Some(0));
            match retry_busy(|| client.query("SELECT grid FROM grid")) {
                Err(ClientError::Deadline(_)) => {}
                other => panic!("expected a deadline rejection, got {other:?}"),
            }
        });
    });

    assert_eq!(queries_ok.load(Ordering::Relaxed), 8 * 30);

    // Writer finished: the grid now covers [0:103,0:63] and queries across
    // old and new regions agree with the formula.
    let mut client = Client::connect(addr).unwrap();
    let RemoteValue::Array { domain, cells, .. } =
        client.query("SELECT grid[60:70, 10:12] FROM grid").unwrap()
    else {
        panic!("expected an array")
    };
    assert_eq!(domain.to_string(), "[60:70,10:12]");
    let mut k = 0;
    for p0 in 60..=70 {
        for p1 in 10..=12 {
            assert_eq!(
                u32::from_ne_bytes(cells[k..k + 4].try_into().unwrap()),
                cell(p0, p1)
            );
            k += 4;
        }
    }

    // Remote fsck over the live server.
    let report = client.fsck().unwrap();
    assert_eq!(report.get("clean").and_then(|j| j.as_bool()), Some(true));

    // Graceful shutdown: drain, final save, clean directory.
    client.shutdown_server().unwrap();
    handle.join();
    let report = tilestore_engine::fsck(dir.path()).unwrap();
    assert!(report.is_clean(), "post-shutdown fsck: {report:?}");

    // The saved database reopens with everything the writer inserted.
    let reopened = Database::open_dir(dir.path()).unwrap();
    let obj = reopened.object("grid").unwrap();
    assert_eq!(
        obj.current_domain.as_ref().map(ToString::to_string),
        Some("[0:103,0:63]".to_string())
    );
}

#[test]
fn admission_limit_refuses_with_typed_busy() {
    // One worker, one slot: while a pipelined burst of whole-object queries
    // holds the slot, a second connection's pings must see typed `busy`.
    let db = Database::in_memory().unwrap();
    db.create_object(
        "big",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 8192)),
    )
    .unwrap();
    db.insert(
        "big",
        &Array::from_fn("[0:255,0:255]".parse().unwrap(), |p| cell(p[0], p[1])).unwrap(),
    )
    .unwrap();
    let handle = serve(
        SharedDatabase::new(db),
        None,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_inflight: 1,
            default_deadline_ms: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Connection A: pipeline query frames without reading responses, so the
    // single slot stays occupied for several query durations.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    let burst = 8u64;
    for id in 0..burst {
        let req = format!("{{\"id\":{id},\"op\":\"query\",\"q\":\"SELECT big FROM big\"}}");
        let payload = req.as_bytes();
        raw.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(payload).unwrap();
    }
    raw.flush().unwrap();

    // Connection B: hammer pings until the burst drains; some must bounce.
    let mut busy = 0u64;
    let mut client = Client::connect(handle.addr()).unwrap();
    let done = std::thread::spawn(move || {
        let mut r = std::io::BufReader::new(raw);
        for _ in 0..burst {
            tilestore_server::wire::read_frame(&mut r).unwrap().unwrap();
        }
    });
    while !done.is_finished() {
        match client.ping() {
            Ok(()) => {}
            Err(ClientError::Busy(_)) => busy += 1,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    done.join().unwrap();
    assert!(busy > 0, "no busy rejection observed across the burst");
    // The limit releases once the burst drains.
    client.ping().unwrap();
    handle.shutdown();
}
