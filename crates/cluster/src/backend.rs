//! Shard backends: where a shard's engine actually lives.
//!
//! Phase 1 is [`ShardBackend::Local`] — N in-process engines behind one
//! coordinator, sharing nothing but the process. Phase 2 is
//! [`ShardBackend::Remote`] — a routing-table entry dialing an ordinary
//! tilestore server over the existing wire protocol, with connection reuse
//! and per-shard deadlines inherited from the request.
//!
//! The epoch-agreement handshake produces one [`ShardPin`] per shard: for a
//! local shard a real engine [`Snapshot`], for a remote shard a
//! server-side pinned snapshot tied to the pinning connection (pins are
//! per-connection server-side, so the pin keeps its connection checked out
//! until release — which also means a dead connection can never leak a pin).

use std::sync::Mutex;

use tilestore_engine::{MddType, QueryStats, SharedDatabase, Snapshot};
use tilestore_geometry::Domain;
use tilestore_rasql::{ExplainReport, StatementResult, Value};
use tilestore_server::{Client, ClientError};
use tilestore_storage::PageStore;
use tilestore_testkit::json::{FromJson, Json};
use tilestore_testkit::Rng;

use crate::error::{ClusterError, Result};

/// One shard's engine: in-process or behind the wire protocol.
pub enum ShardBackend<S: PageStore> {
    /// An in-process engine owned by the coordinator.
    Local(SharedDatabase<S>),
    /// A remote tilestore server reached over TCP.
    Remote(RemoteShard),
}

impl<S: PageStore> ShardBackend<S> {
    /// Human-readable location for error messages and status reports.
    #[must_use]
    pub fn location(&self) -> String {
        match self {
            ShardBackend::Local(_) => "local".to_string(),
            ShardBackend::Remote(r) => r.addr.clone(),
        }
    }

    /// Whether this shard runs in-process.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self, ShardBackend::Local(_))
    }
}

/// A remote shard: its address plus a small pool of idle connections.
pub struct RemoteShard {
    /// Address of the shard's server.
    pub addr: String,
    idle: Mutex<Vec<Client>>,
}

/// Cap on idle connections retained per remote shard.
const MAX_IDLE_PER_SHARD: usize = 8;

impl RemoteShard {
    /// A remote shard at `addr`; connections are dialed lazily.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        RemoteShard {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Checks out an idle connection or dials a new one.
    pub(crate) fn checkout_client(&self) -> std::result::Result<Client, ClientError> {
        if let Some(c) = self.idle.lock().expect("shard pool lock").pop() {
            return Ok(c);
        }
        Client::connect(self.addr.as_str())
    }

    /// Returns a healthy connection to the idle pool.
    pub(crate) fn giveback_client(&self, mut client: Client) {
        client.set_deadline_ms(None);
        let mut idle = self.idle.lock().expect("shard pool lock");
        if idle.len() < MAX_IDLE_PER_SHARD {
            idle.push(client);
        }
    }
}

/// Maps a client error at shard `shard` of `addr` to the cluster's typed
/// failure. Transport-class failures (connect, reset, busy after retries,
/// shutdown, protocol violations) become [`ClusterError::ShardUnavailable`]
/// naming the shard; engine-class failures stay [`ClusterError::Remote`].
pub(crate) fn map_client_error(shard: usize, addr: &str, e: ClientError) -> ClusterError {
    match e {
        ClientError::Deadline(m) => ClusterError::Deadline { shard, detail: m },
        ClientError::Engine(m) | ClientError::BadRequest(m) => {
            ClusterError::Remote { shard, message: m }
        }
        other => ClusterError::ShardUnavailable {
            shard,
            addr: addr.to_string(),
            detail: other.to_string(),
        },
    }
}

/// Per-shard execution counters reported by `EXPLAIN` on one shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardExplainCounts {
    /// Tiles the shard's planner would fetch.
    pub fetched: u64,
    /// Tiles pruned by synopsis/bitmap evidence.
    pub pruned: u64,
    /// R+-tree nodes visited resolving the region.
    pub index_nodes: u64,
}

/// What a pinned shard knows about one object.
pub struct PinnedObject {
    /// The shard's current domain for the object (`None` = no data yet).
    pub current_domain: Option<Domain>,
    /// The object's MDD type (cell type + definition domain).
    pub mdd_type: MddType,
    /// Tiles the shard stores for the object.
    pub tiles: u64,
    /// Cells those tiles cover.
    pub covered_cells: u64,
}

/// One shard's half of the epoch-agreement handshake: a snapshot pinned at
/// the coordinator's consistency point. Dropping a local pin releases the
/// engine snapshot; remote pins should be released via
/// [`ShardPin::release`] so the connection returns to the pool (dropping
/// one instead closes the connection, which the server also treats as a
/// release — pins die with their connection).
#[allow(clippy::large_enum_variant)] // one pin per shard per request; size is irrelevant
pub enum ShardPin<S: PageStore> {
    /// An in-process engine snapshot.
    Local {
        /// The shard id.
        shard: usize,
        /// The pinned snapshot.
        snap: Snapshot<S>,
    },
    /// A server-side pin tied to `client`'s connection.
    Remote {
        /// The shard id.
        shard: usize,
        /// The shard's address (for error reporting and pool return).
        addr: String,
        /// The pinning connection; all pinned requests must ride it.
        client: Client,
        /// The server-assigned pin id.
        pin: u64,
        /// The epoch the pin captured.
        epoch: u64,
    },
}

impl<S: PageStore> ShardPin<S> {
    /// The shard id this pin belongs to.
    #[must_use]
    pub fn shard(&self) -> usize {
        match self {
            ShardPin::Local { shard, .. } | ShardPin::Remote { shard, .. } => *shard,
        }
    }

    /// The epoch the pin captured.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        match self {
            ShardPin::Local { snap, .. } => snap.epoch(),
            ShardPin::Remote { epoch, .. } => *epoch,
        }
    }

    /// Fetches the pinned view of `object`: current domain and MDD type.
    pub fn object(&mut self, object: &str) -> Result<PinnedObject> {
        match self {
            ShardPin::Local { snap, .. } => {
                let meta = snap.object(object)?;
                Ok(PinnedObject {
                    current_domain: meta.current_domain.clone(),
                    mdd_type: meta.mdd_type.clone(),
                    tiles: meta.tiles.len() as u64,
                    covered_cells: meta.covered_cells(),
                })
            }
            ShardPin::Remote {
                shard,
                addr,
                client,
                pin,
                ..
            } => {
                let info = client
                    .info_pinned(object, *pin)
                    .map_err(|e| map_client_error(*shard, addr, e))?;
                parse_remote_info(*shard, &info)
            }
        }
    }

    /// Runs one rasql statement against the pinned snapshot. The statement
    /// is pre-rewritten by the coordinator (explicit clip ranges, `avg`
    /// lowered to `sum`), so both backends see identical surface syntax.
    pub fn run(&mut self, stmt: &str) -> Result<(Value, QueryStats)> {
        match self {
            ShardPin::Local { snap, .. } => match tilestore_rasql::execute_statement(snap, stmt)? {
                StatementResult::Value(v, stats) => Ok((v, stats)),
                StatementResult::Explain(_) => Err(ClusterError::Config(
                    "shard run() got an EXPLAIN statement".into(),
                )),
            },
            ShardPin::Remote {
                shard,
                addr,
                client,
                pin,
                ..
            } => {
                let result = client
                    .query_pinned_raw(stmt, *pin)
                    .map_err(|e| map_client_error(*shard, addr, e))?;
                parse_remote_value(*shard, &result)
            }
        }
    }

    /// Runs `EXPLAIN <stmt>` against the pinned snapshot and returns the
    /// shard's planner counters.
    pub fn explain(&mut self, stmt: &str) -> Result<ShardExplainCounts> {
        match self {
            ShardPin::Local { snap, .. } => {
                match tilestore_rasql::execute_statement(snap, &format!("EXPLAIN {stmt}"))? {
                    StatementResult::Explain(ExplainReport { plan, .. }) => {
                        Ok(ShardExplainCounts {
                            fetched: plan.fetched(),
                            pruned: plan.pruned(),
                            index_nodes: plan.index_nodes,
                        })
                    }
                    StatementResult::Value(..) => Err(ClusterError::Config(
                        "EXPLAIN statement produced a value".into(),
                    )),
                }
            }
            ShardPin::Remote {
                shard,
                addr,
                client,
                pin,
                ..
            } => {
                let result = client
                    .query_pinned_raw(&format!("EXPLAIN {stmt}"), *pin)
                    .map_err(|e| map_client_error(*shard, addr, e))?;
                let plan = result.get("plan").ok_or_else(|| ClusterError::Remote {
                    shard: *shard,
                    message: "EXPLAIN response lacks a plan".into(),
                })?;
                let count = |k: &str| plan.get(k).and_then(Json::as_u64).unwrap_or(0);
                Ok(ShardExplainCounts {
                    fetched: count("fetched"),
                    pruned: count("pruned"),
                    index_nodes: count("index_nodes"),
                })
            }
        }
    }

    /// Releases the pin. Local pins just drop; remote pins unpin
    /// server-side and return the connection to the shard's pool (on unpin
    /// failure the connection is dropped instead, which releases the pin
    /// server-side anyway).
    pub fn release(self, backends: &[ShardBackend<S>]) {
        if let ShardPin::Remote {
            shard,
            mut client,
            pin,
            ..
        } = self
        {
            if client.unpin(pin).is_ok() {
                if let Some(ShardBackend::Remote(r)) = backends.get(shard) {
                    r.giveback_client(client);
                }
            }
        }
    }
}

/// Pins shard `shard` of `backend`, optionally bounding the remote
/// handshake by `deadline_ms` and enabling transparent retry (jittered by
/// `retry_seed`) on the pinning connection.
pub(crate) fn pin_shard<S: PageStore>(
    shard: usize,
    backend: &ShardBackend<S>,
    deadline_ms: Option<u64>,
    retry_seed: u64,
) -> Result<ShardPin<S>> {
    match backend {
        ShardBackend::Local(db) => Ok(ShardPin::Local {
            shard,
            snap: db.snapshot(),
        }),
        ShardBackend::Remote(r) => {
            let mut client = r
                .checkout_client()
                .map_err(|e| map_client_error(shard, &r.addr, e))?;
            client.set_deadline_ms(deadline_ms);
            client.set_retry(Some(tilestore_server::RetryPolicy {
                seed: retry_seed,
                ..tilestore_server::RetryPolicy::default()
            }));
            let (pin, epoch) = match client.pin() {
                Ok(p) => p,
                Err(e) => return Err(map_client_error(shard, &r.addr, e)),
            };
            Ok(ShardPin::Remote {
                shard,
                addr: r.addr.clone(),
                client,
                pin,
                epoch,
            })
        }
    }
}

/// Decodes a remote `info` response into the coordinator's object view.
fn parse_remote_info(shard: usize, info: &Json) -> Result<PinnedObject> {
    let proto = |m: &str| ClusterError::Remote {
        shard,
        message: m.to_string(),
    };
    let current_domain = match info.get("current_domain") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_str()
                .and_then(|s| s.parse::<Domain>().ok())
                .ok_or_else(|| proto("info carries an unparseable current_domain"))?,
        ),
    };
    let mdd_type = info
        .get("mdd_type")
        .ok_or_else(|| proto("info lacks mdd_type (shard server too old?)"))
        .and_then(|v| {
            MddType::from_json(v).map_err(|e| proto(&format!("bad mdd_type in info: {e}")))
        })?;
    Ok(PinnedObject {
        current_domain,
        mdd_type,
        tiles: info.get("tiles").and_then(Json::as_u64).unwrap_or(0),
        covered_cells: info
            .get("covered_cells")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    })
}

/// Decodes a remote query response (`value` + `stats`) into the rasql
/// executor's types, byte-identically for arrays.
fn parse_remote_value(shard: usize, result: &Json) -> Result<(Value, QueryStats)> {
    let proto = |m: &str| ClusterError::Remote {
        shard,
        message: m.to_string(),
    };
    let v = result
        .get("value")
        .ok_or_else(|| proto("query response lacks value"))?;
    let value = match v.get("kind").and_then(Json::as_str) {
        Some("array") => {
            let domain = v
                .get("domain")
                .and_then(Json::as_str)
                .and_then(|s| s.parse::<Domain>().ok())
                .ok_or_else(|| proto("array value lacks a valid domain"))?;
            let cell_size =
                v.get("cell_size")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| proto("array value lacks cell_size"))? as usize;
            let cells = v
                .get("cells_hex")
                .and_then(Json::as_str)
                .ok_or_else(|| proto("array value lacks cells_hex"))
                .and_then(|s| tilestore_server::wire::hex_decode(s).map_err(|e| proto(&e)))?;
            Value::Array(
                tilestore_engine::Array::from_bytes(domain, cell_size, cells)
                    .map_err(tilestore_rasql::QueryError::Engine)?,
            )
        }
        Some("number") => {
            let bits = v
                .get("bits")
                .and_then(Json::as_u64)
                .ok_or_else(|| proto("number value lacks bits"))?;
            Value::Number(f64::from_bits(bits))
        }
        Some("count") => Value::Count(
            v.get("value")
                .and_then(Json::as_u64)
                .ok_or_else(|| proto("count value lacks value"))?,
        ),
        Some("bool") => Value::Bool(
            v.get("value")
                .and_then(Json::as_bool)
                .ok_or_else(|| proto("bool value lacks value"))?,
        ),
        _ => return Err(proto("unknown value kind")),
    };
    let stats = result
        .get("stats")
        .and_then(|s| QueryStats::from_json(s).ok())
        .unwrap_or_default();
    Ok((value, stats))
}

/// Derives a per-shard jitter seed so concurrent shard connections back off
/// on decorrelated schedules.
pub(crate) fn shard_retry_seed(base: u64, shard: usize) -> u64 {
    let mut rng = Rng::seed_from_u64(base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.next_u64()
}
