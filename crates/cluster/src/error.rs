//! Typed failures of the cluster layer.

use tilestore_rasql::QueryError;

/// Everything that can go wrong coordinating a sharded operation.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster configuration is invalid (bad shard map, manifest
    /// mismatch, unsupported backend for the operation).
    Config(String),
    /// Query-layer failure surfaced by the local execution path (parse,
    /// semantic, or engine errors).
    Query(QueryError),
    /// A shard's engine rejected or failed the operation (reported over the
    /// wire for remote shards).
    Remote {
        /// The shard that reported the failure.
        shard: usize,
        /// The shard's error message.
        message: String,
    },
    /// A shard could not be reached (connect failure, connection reset,
    /// shard shutdown, or exhausted retries). The partial-failure contract:
    /// this surfaces promptly and names the shard instead of hanging the
    /// whole request.
    ShardUnavailable {
        /// The unreachable shard.
        shard: usize,
        /// Where the shard lives (`local` or its address).
        addr: String,
        /// What went wrong.
        detail: String,
    },
    /// The operation is valid on a single node but has no cluster-wide
    /// implementation (e.g. `retile --from-log`, which would need a merged
    /// cross-shard access log). Typed so callers can distinguish "never
    /// works here" from a transient shard failure.
    Unsupported {
        /// The operation that was requested.
        op: String,
        /// Why it cannot run across shards.
        detail: String,
    },
    /// The request's deadline expired at a shard.
    Deadline {
        /// The shard that timed out.
        shard: usize,
        /// The shard's deadline message.
        detail: String,
    },
    /// Filesystem failure reading or writing the cluster manifest.
    Io(std::io::Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(m) => write!(f, "cluster config: {m}"),
            ClusterError::Query(e) => write!(f, "{e}"),
            ClusterError::Remote { shard, message } => {
                write!(f, "shard {shard}: {message}")
            }
            ClusterError::ShardUnavailable {
                shard,
                addr,
                detail,
            } => write!(f, "shard {shard} ({addr}) unavailable: {detail}"),
            ClusterError::Unsupported { op, detail } => {
                write!(f, "{op} is unsupported in cluster mode: {detail}")
            }
            ClusterError::Deadline { shard, detail } => {
                write!(f, "shard {shard} deadline: {detail}")
            }
            ClusterError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<QueryError> for ClusterError {
    fn from(e: QueryError) -> Self {
        ClusterError::Query(e)
    }
}

impl From<tilestore_engine::EngineError> for ClusterError {
    fn from(e: tilestore_engine::EngineError) -> Self {
        ClusterError::Query(QueryError::Engine(e))
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// Cluster-side result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;
