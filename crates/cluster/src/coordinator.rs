//! The coordinator: one logical store over N engine shards.
//!
//! Reads run the "agree on epochs" handshake: under a shared gate the
//! coordinator pins one snapshot per shard (serially — this is the
//! consistency point), then scatters the per-shard clipped queries onto the
//! [`ThreadPool`], gathers the sub-results, and stitches them into one
//! answer. Writes take the gate exclusively and commit to every owning
//! shard before any new read can pin, so a concurrent reader observes the
//! shards' epochs either all before or all after a cluster write — never a
//! mix (for local backends; remote shards shared by several coordinators
//! get this only per-coordinator).
//!
//! Aggregate recombination follows the condenser algebra: `sum` and `count`
//! add, `min`/`max` fold, `avg` is pushed down as `sum` and divided by the
//! region's cell count once at the coordinator (bit-identical for integer
//! cell types; float sums may differ in rounding from a single engine
//! because addition order changes), `some` ORs and `all` ANDs. Array
//! results paste per-shard pieces into one slab: the shard map partitions
//! all of space, so the clipped pieces partition the query region exactly
//! and every result cell is written by exactly one piece.

use std::sync::{Arc, RwLock};

use tilestore_engine::{
    aggregate_array, induce_scalar, AggKind, AggValue, Array, BinOp, CellType, InsertStats,
    MddType, QueryStats, RetileStats,
};
use tilestore_exec::ThreadPool;
use tilestore_geometry::{copy_region, AxisRange, Domain};
use tilestore_rasql::{
    parse_statement, AxisSelect, Condenser, Expr, InducedOp, Query, QueryError, Statement, Value,
};
use tilestore_server::ClientError;
use tilestore_storage::PageStore;
use tilestore_testkit::json::{FromJson, Json, ToJson};
use tilestore_tiling::{RetileSpec, Scheme};

use crate::backend::{
    map_client_error, pin_shard, shard_retry_seed, PinnedObject, ShardBackend, ShardExplainCounts,
    ShardPin,
};
use crate::error::{ClusterError, Result};
use crate::shard_map::ShardMap;

/// One shard's epoch at the request's consistency point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEpoch {
    /// The shard id.
    pub shard: usize,
    /// Its pinned catalog epoch.
    pub epoch: u64,
}

/// A cluster query's answer: the stitched value, the merged counters, and
/// the per-shard epochs the scatter ran against.
#[derive(Debug)]
pub struct ClusterValue {
    /// The stitched result.
    pub value: Value,
    /// Saturating merge of every shard's counters.
    pub stats: QueryStats,
    /// The agreed epoch set.
    pub epochs: Vec<ShardEpoch>,
}

/// One shard's entry in a cluster `EXPLAIN` report.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The shard id.
    pub shard: usize,
    /// Where the shard lives.
    pub location: String,
    /// The sub-domain of the query region this shard owns (`None` when the
    /// region misses the shard entirely).
    pub sub_domain: Option<Domain>,
    /// The epoch pinned for this shard.
    pub epoch: u64,
    /// The shard planner's counters (zero when the shard holds no data).
    pub counts: ShardExplainCounts,
}

/// The cluster-level `EXPLAIN [ANALYZE]` report.
#[derive(Debug, Clone)]
pub struct ClusterExplain {
    /// The accessed object.
    pub object: String,
    /// The resolved global query region.
    pub region: Domain,
    /// The `WHERE` predicate, rendered, if any.
    pub predicate: Option<String>,
    /// The condenser name, if the query aggregates.
    pub condenser: Option<&'static str>,
    /// Per-shard plans, shard order.
    pub shards: Vec<ShardPlan>,
    /// Measured execution for `EXPLAIN ANALYZE`: merged counters plus
    /// wall-clock nanoseconds (the analyze run re-pins, so it may observe a
    /// later epoch set than the plan).
    pub analyze: Option<(QueryStats, u64)>,
}

impl ClusterExplain {
    /// Total tiles fetched across shards.
    #[must_use]
    pub fn fetched(&self) -> u64 {
        self.shards.iter().map(|s| s.counts.fetched).sum()
    }

    /// Total tiles pruned across shards.
    #[must_use]
    pub fn pruned(&self) -> u64 {
        self.shards.iter().map(|s| s.counts.pruned).sum()
    }

    /// Renders the report as indented text (one line per shard), matching
    /// the CLI's single-engine explain rendering style.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster explain: object={} region={}\n",
            self.object, self.region
        ));
        if let Some(p) = &self.predicate {
            out.push_str(&format!("  predicate: {p}\n"));
        }
        if let Some(c) = self.condenser {
            out.push_str(&format!("  condenser: {c}\n"));
        }
        for s in &self.shards {
            match &s.sub_domain {
                Some(d) => out.push_str(&format!(
                    "  shard {} ({}): owns {} epoch {} fetched {} pruned {} index_nodes {}\n",
                    s.shard,
                    s.location,
                    d,
                    s.epoch,
                    s.counts.fetched,
                    s.counts.pruned,
                    s.counts.index_nodes
                )),
                None => out.push_str(&format!(
                    "  shard {} ({}): no overlap, epoch {}\n",
                    s.shard, s.location, s.epoch
                )),
            }
        }
        out.push_str(&format!(
            "  total: fetched {} pruned {}\n",
            self.fetched(),
            self.pruned()
        ));
        if let Some((stats, ns)) = &self.analyze {
            out.push_str(&format!(
                "  analyze: tiles_read {} tiles_pruned {} elapsed {:.3} ms\n",
                stats.tiles_read,
                stats.tiles_pruned,
                *ns as f64 / 1e6
            ));
        }
        out
    }
}

impl ToJson for ClusterExplain {
    fn to_json(&self) -> Json {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("shard", Json::UInt(s.shard as u64)),
                    ("location", Json::Str(s.location.clone())),
                    (
                        "sub_domain",
                        s.sub_domain
                            .as_ref()
                            .map_or(Json::Null, |d| Json::Str(d.to_string())),
                    ),
                    ("epoch", Json::UInt(s.epoch)),
                    ("fetched", Json::UInt(s.counts.fetched)),
                    ("pruned", Json::UInt(s.counts.pruned)),
                    ("index_nodes", Json::UInt(s.counts.index_nodes)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("object", Json::Str(self.object.clone())),
            ("region", Json::Str(self.region.to_string())),
        ];
        if let Some(p) = &self.predicate {
            fields.push(("predicate", Json::Str(p.clone())));
        }
        if let Some(c) = self.condenser {
            fields.push(("condenser", Json::Str(c.to_string())));
        }
        fields.push(("fetched", Json::UInt(self.fetched())));
        fields.push(("pruned", Json::UInt(self.pruned())));
        fields.push(("shards", Json::Array(shards)));
        if let Some((stats, ns)) = &self.analyze {
            fields.push((
                "analyze",
                Json::obj(vec![
                    ("stats", stats.to_json()),
                    ("elapsed_ns", Json::UInt(*ns)),
                ]),
            ));
        }
        Json::obj(fields)
    }
}

/// The result of a cluster statement (query or `EXPLAIN`).
#[derive(Debug)]
pub enum ClusterStatement {
    /// A plain query's stitched value.
    Value(ClusterValue),
    /// A cluster `EXPLAIN [ANALYZE]` report.
    Explain(ClusterExplain),
}

/// A cluster write receipt: per-shard epochs and stats, plus merged totals.
pub struct ClusterWrite<T> {
    /// `(shard, committed epoch, stats)` for every shard that took part.
    pub per_shard: Vec<(usize, u64, T)>,
}

impl ClusterWrite<InsertStats> {
    /// Sums the per-shard insert counters.
    #[must_use]
    pub fn merged(&self) -> InsertStats {
        let mut m = InsertStats::default();
        for (_, _, s) in &self.per_shard {
            m.tiles_created += s.tiles_created;
            m.bytes_written += s.bytes_written;
            m.pages_written += s.pages_written;
            m.elapsed_ns = m.elapsed_ns.max(s.elapsed_ns);
        }
        m
    }
}

impl ClusterWrite<RetileStats> {
    /// Sums the per-shard retile counters.
    #[must_use]
    pub fn merged(&self) -> RetileStats {
        let mut m = RetileStats::default();
        for (_, _, s) in &self.per_shard {
            m.tiles_before += s.tiles_before;
            m.tiles_after += s.tiles_after;
            m.bytes_rewritten += s.bytes_rewritten;
            m.elapsed_ns = m.elapsed_ns.max(s.elapsed_ns);
        }
        m
    }
}

/// What one shard does during a scatter.
enum ShardWork {
    /// The query region misses the shard's slab.
    Skip,
    /// The shard owns part of the region but holds no data: the piece is
    /// all defaults and is computed coordinator-side without any I/O.
    Default(Domain),
    /// Run the rewritten statement against the shard's pinned snapshot.
    Run(String),
}

/// The coordinator: shard map + backends + scatter pool.
pub struct Coordinator<S: PageStore> {
    map: ShardMap,
    backends: Vec<ShardBackend<S>>,
    pool: Arc<ThreadPool>,
    /// Readers share, writers exclude: pins are only taken under `read`,
    /// multi-shard commits under `write`, which is what makes the agreed
    /// epoch set consistent across shards.
    gate: RwLock<()>,
    retry_base: u64,
}

impl<S: PageStore> Coordinator<S> {
    /// Builds a coordinator over `backends` partitioned by `map`.
    ///
    /// # Errors
    /// [`ClusterError::Config`] when the backend count does not match the
    /// map's shard count.
    pub fn new(
        map: ShardMap,
        backends: Vec<ShardBackend<S>>,
        pool: Arc<ThreadPool>,
    ) -> Result<Self> {
        if backends.len() != map.shards() {
            return Err(ClusterError::Config(format!(
                "shard map wants {} shards, got {} backends",
                map.shards(),
                backends.len()
            )));
        }
        Ok(Coordinator {
            map,
            backends,
            pool,
            gate: RwLock::new(()),
            retry_base: 0x636c_7573_7465_7221,
        })
    }

    /// The partitioning function.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.backends.len()
    }

    /// The shard backends.
    #[must_use]
    pub fn backends(&self) -> &[ShardBackend<S>] {
        &self.backends
    }

    /// Pins every shard at one consistency point ("agree on epochs"). On
    /// any failure the already-taken pins are released before the error
    /// surfaces, so a failed handshake leaks nothing.
    fn pin_all(&self, deadline_ms: Option<u64>) -> Result<Vec<ShardPin<S>>> {
        let _g = self.gate.read().expect("cluster gate poisoned");
        let mut pins: Vec<ShardPin<S>> = Vec::with_capacity(self.backends.len());
        for (k, b) in self.backends.iter().enumerate() {
            match pin_shard(k, b, deadline_ms, shard_retry_seed(self.retry_base, k)) {
                Ok(p) => pins.push(p),
                Err(e) => {
                    for p in pins {
                        p.release(&self.backends);
                    }
                    return Err(e);
                }
            }
        }
        Ok(pins)
    }

    /// Parses and executes one rasql statement across the cluster.
    ///
    /// # Errors
    /// Parse/semantic errors, shard failures ([`ClusterError::ShardUnavailable`]
    /// names the failed shard), deadline expiry.
    pub fn execute(&self, stmt: &str) -> Result<ClusterStatement> {
        self.execute_with(stmt, None)
    }

    /// [`Coordinator::execute`] with a deadline inherited by every remote
    /// shard request.
    ///
    /// # Errors
    /// As [`Coordinator::execute`].
    pub fn execute_with(&self, stmt: &str, deadline_ms: Option<u64>) -> Result<ClusterStatement> {
        match parse_statement(stmt)? {
            Statement::Query(q) => Ok(ClusterStatement::Value(self.query_with(&q, deadline_ms)?)),
            Statement::Explain { query, analyze } => Ok(ClusterStatement::Explain(
                self.explain_with(&query, analyze, deadline_ms)?,
            )),
        }
    }

    /// Executes a pre-parsed query across the cluster.
    ///
    /// # Errors
    /// As [`Coordinator::execute`].
    pub fn query(&self, query: &Query) -> Result<ClusterValue> {
        self.query_with(query, None)
    }

    /// [`Coordinator::query`] with a deadline for remote shards.
    ///
    /// # Errors
    /// As [`Coordinator::execute`].
    pub fn query_with(&self, query: &Query, deadline_ms: Option<u64>) -> Result<ClusterValue> {
        validate(query)?;
        let mut pins = self.pin_all(deadline_ms)?;
        let gathered = self.scattered_query(query, &mut pins);
        // `scattered_query` consumed and released the pins via scatter.
        gathered
    }

    /// The pinned read path: resolve, clip, scatter, gather, stitch.
    /// Consumes (and releases) the pins.
    fn scattered_query(&self, query: &Query, pins: &mut Vec<ShardPin<S>>) -> Result<ClusterValue> {
        let epochs: Vec<ShardEpoch> = pins
            .iter()
            .map(|p| ShardEpoch {
                shard: p.shard(),
                epoch: p.epoch(),
            })
            .collect();
        let objects = match self.pinned_objects(pins, &query.from) {
            Ok(o) => o,
            Err(e) => {
                for p in pins.drain(..) {
                    p.release(&self.backends);
                }
                return Err(e);
            }
        };
        let prepared = match prepare(query, &self.map, &objects) {
            Ok(p) => p,
            Err(e) => {
                for p in pins.drain(..) {
                    p.release(&self.backends);
                }
                return Err(e);
            }
        };
        let Prepared {
            region,
            fixed_axes,
            work,
            cell,
            condenser,
            agg_kind,
        } = prepared;

        // Scatter: every closure releases its pin whatever happens, so a
        // failing shard never strands the survivors' snapshots.
        let backends = &self.backends;
        let items: Vec<(ShardPin<S>, ShardWork)> = pins.drain(..).zip(work).collect();
        let results: Vec<Result<Option<(Value, QueryStats)>>> =
            self.pool.scatter(items, |_, (mut pin, work)| match work {
                ShardWork::Skip => {
                    pin.release(backends);
                    Ok(None)
                }
                ShardWork::Default(clip) => {
                    pin.release(backends);
                    default_piece(query, &clip, &cell, agg_kind).map(Some)
                }
                ShardWork::Run(stmt) => {
                    let r = pin.run(&stmt);
                    pin.release(backends);
                    r.map(Some)
                }
            });

        let mut pieces = Vec::new();
        let mut stats = QueryStats::default();
        let mut first_err = None;
        for r in results {
            match r {
                Ok(Some((v, s))) => {
                    stats.merge(&s);
                    pieces.push(v);
                }
                Ok(None) => {}
                Err(e) => {
                    // Prefer availability errors: they carry the shard name
                    // the caller needs for the partial-failure contract.
                    let takes_precedence = matches!(
                        e,
                        ClusterError::ShardUnavailable { .. } | ClusterError::Deadline { .. }
                    );
                    if first_err.is_none() || takes_precedence {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        let value = match condenser {
            Some(op) => combine_scalars(op, &pieces, region.cells())?,
            None => combine_arrays(&region, &fixed_axes, pieces)?,
        };
        Ok(ClusterValue {
            value,
            stats,
            epochs,
        })
    }

    /// Builds the per-shard `EXPLAIN` report for a pre-parsed query.
    ///
    /// # Errors
    /// As [`Coordinator::execute`]; induced expressions are rejected like
    /// the single-engine planner does.
    pub fn explain(&self, query: &Query, analyze: bool) -> Result<ClusterExplain> {
        self.explain_with(query, analyze, None)
    }

    /// [`Coordinator::explain`] with a deadline for remote shards.
    ///
    /// # Errors
    /// As [`Coordinator::explain`].
    pub fn explain_with(
        &self,
        query: &Query,
        analyze: bool,
        deadline_ms: Option<u64>,
    ) -> Result<ClusterExplain> {
        validate(query)?;
        // Mirror the single-engine EXPLAIN restriction.
        match &query.expr {
            Expr::Access { .. } => {}
            Expr::Condense { arg, .. } if matches!(arg.as_ref(), Expr::Access { .. }) => {}
            _ => {
                return Err(ClusterError::Query(QueryError::Semantic(
                    "EXPLAIN supports a plain access or a condenser over one; induced \
                     expressions are post-processing and have no tile plan"
                        .to_string(),
                )))
            }
        }
        let mut pins = self.pin_all(deadline_ms)?;
        let epochs: Vec<u64> = pins.iter().map(ShardPin::epoch).collect();
        let objects = match self.pinned_objects(&mut pins, &query.from) {
            Ok(o) => o,
            Err(e) => {
                for p in pins.drain(..) {
                    p.release(&self.backends);
                }
                return Err(e);
            }
        };
        let prepared = match prepare(query, &self.map, &objects) {
            Ok(p) => p,
            Err(e) => {
                for p in pins.drain(..) {
                    p.release(&self.backends);
                }
                return Err(e);
            }
        };

        let backends = &self.backends;
        let items: Vec<(ShardPin<S>, ShardWork)> = pins.drain(..).zip(prepared.work).collect();
        let results: Vec<Result<(Option<Domain>, ShardExplainCounts)>> =
            self.pool.scatter(items, |_, (mut pin, work)| match work {
                ShardWork::Skip => {
                    pin.release(backends);
                    Ok((None, ShardExplainCounts::default()))
                }
                ShardWork::Default(clip) => {
                    pin.release(backends);
                    Ok((Some(clip), ShardExplainCounts::default()))
                }
                ShardWork::Run(stmt) => {
                    let r = pin.explain(&stmt);
                    let shard = pin.shard();
                    pin.release(backends);
                    r.map(|c| (self.map.clip(shard, &prepared.region), c))
                }
            });

        let mut shards = Vec::with_capacity(results.len());
        for (k, r) in results.into_iter().enumerate() {
            let (sub_domain, counts) = r?;
            shards.push(ShardPlan {
                shard: k,
                location: self.backends[k].location(),
                sub_domain,
                epoch: epochs[k],
                counts,
            });
        }
        let analyze_info = if analyze {
            let started = std::time::Instant::now();
            let v = self.query_with(query, deadline_ms)?;
            Some((v.stats, started.elapsed().as_nanos() as u64))
        } else {
            None
        };
        Ok(ClusterExplain {
            object: query.from.clone(),
            region: prepared.region,
            predicate: query.predicate.as_ref().map(|p| p.to_string()),
            condenser: prepared.condenser.map(Condenser::name),
            shards,
            analyze: analyze_info,
        })
    }

    /// Fetches each pinned shard's view of `object`; errors if the object
    /// is unknown anywhere or its types disagree across shards.
    fn pinned_objects(&self, pins: &mut [ShardPin<S>], object: &str) -> Result<Vec<PinnedObject>> {
        let mut out = Vec::with_capacity(pins.len());
        for pin in pins.iter_mut() {
            out.push(pin.object(object)?);
        }
        for o in &out[1..] {
            if o.mdd_type != out[0].mdd_type {
                return Err(ClusterError::Config(format!(
                    "object {object:?} has diverging MDD types across shards"
                )));
            }
        }
        Ok(out)
    }

    /// Inserts `array`, routing each cell to its owning shard. Holds the
    /// write gate for the whole multi-shard commit so concurrent readers
    /// pin either all-before or all-after epochs.
    ///
    /// # Errors
    /// Shard failures; engine errors from any shard abort the remaining
    /// routing (already-committed shards keep their piece — inserts are
    /// idempotent to re-apply).
    pub fn insert(&self, object: &str, array: &Array) -> Result<ClusterWrite<InsertStats>> {
        let _g = self.gate.write().expect("cluster gate poisoned");
        let mut per_shard = Vec::new();
        for k in 0..self.backends.len() {
            let Some(clip) = self.map.clip(k, array.domain()) else {
                continue;
            };
            let sub = extract_sub_array(array, &clip)?;
            match &self.backends[k] {
                ShardBackend::Local(db) => {
                    let receipt = db.insert(object, &sub)?;
                    per_shard.push((k, receipt.epoch, receipt.stats));
                }
                ShardBackend::Remote(r) => {
                    let mut client = self.remote_client(k, r)?;
                    let resp = client
                        .insert(object, &sub)
                        .map_err(|e| map_client_error(k, &r.addr, e))?;
                    r.giveback_client(client);
                    let epoch = resp.get("epoch").and_then(Json::as_u64).unwrap_or(0);
                    let stats = InsertStats::from_json(&resp).unwrap_or_default();
                    per_shard.push((k, epoch, stats));
                }
            }
        }
        Ok(ClusterWrite { per_shard })
    }

    /// Pushes a re-tiling spec to every shard (each re-tiles its own
    /// sub-domain), under the exclusive gate so the epoch advance is
    /// cluster-consistent. Accepts the same grammar as the single-node
    /// `retile` command ([`tilestore_tiling::RETILE_USAGE`]): an explicit
    /// scheme or `--defrag[:<budgetKB>]`. `--from-log` is rejected with
    /// [`ClusterError::Unsupported`] — access logs are per-shard and a
    /// cross-shard merge does not exist yet.
    ///
    /// # Errors
    /// Shard failures, bad specs, [`ClusterError::Unsupported`] for
    /// `--from-log`.
    pub fn retile(&self, object: &str, spec: &str) -> Result<ClusterWrite<RetileStats>> {
        let parsed = tilestore_tiling::parse_retile_spec(spec).map_err(ClusterError::Config)?;
        if matches!(parsed, RetileSpec::FromLog { .. }) {
            return Err(ClusterError::Unsupported {
                op: "retile --from-log".to_string(),
                detail: "access logs are per-shard; retile with an explicit scheme or run \
                         --from-log on each shard server directly"
                    .to_string(),
            });
        }
        let _g = self.gate.write().expect("cluster gate poisoned");
        let mut per_shard = Vec::new();
        for k in 0..self.backends.len() {
            match &self.backends[k] {
                ShardBackend::Local(db) => {
                    // Shards whose sub-domain holds no data yet have nothing
                    // to rewrite; skip them instead of failing the cluster.
                    let applied = match &parsed {
                        RetileSpec::Defrag { budget_bytes } => {
                            Self::defrag_local(db, object, *budget_bytes)
                        }
                        RetileSpec::Scheme(_) => {
                            let dim = db.object(object)?.mdd_type.dim();
                            let scheme: Scheme = tilestore_tiling::parse_scheme_spec(spec, dim)
                                .map_err(ClusterError::Config)?;
                            db.retile(object, scheme)
                                .map(|receipt| (receipt.epoch, receipt.stats))
                        }
                        RetileSpec::FromLog { .. } => unreachable!("rejected above"),
                    };
                    match applied {
                        Ok((epoch, stats)) => per_shard.push((k, epoch, stats)),
                        Err(tilestore_engine::EngineError::EmptyObject(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                ShardBackend::Remote(r) => {
                    let mut client = self.remote_client(k, r)?;
                    match client.retile(object, spec) {
                        Ok(resp) => {
                            r.giveback_client(client);
                            let epoch = resp.get("epoch").and_then(Json::as_u64).unwrap_or(0);
                            let stats = RetileStats::from_json(&resp).unwrap_or_default();
                            per_shard.push((k, epoch, stats));
                        }
                        // Remote engine errors arrive as strings; an empty
                        // shard is the one benign case, matched by message.
                        Err(ClientError::Engine(m)) if m.contains("holds no cells") => {
                            r.giveback_client(client);
                        }
                        Err(e) => return Err(map_client_error(k, &r.addr, e)),
                    }
                }
            }
        }
        Ok(ClusterWrite { per_shard })
    }

    /// Runs a (possibly budget-paced) defrag on one local shard and
    /// normalises both pacing modes to `(epoch, RetileStats)` so the
    /// cluster write report has one shape.
    fn defrag_local(
        db: &tilestore_engine::SharedDatabase<S>,
        object: &str,
        budget_bytes: Option<u64>,
    ) -> std::result::Result<(u64, RetileStats), tilestore_engine::EngineError> {
        let Some(budget) = budget_bytes else {
            let receipt = db.defrag(object)?;
            return Ok((receipt.epoch, receipt.stats));
        };
        let tiles = db.object(object)?.tiles.len() as u64;
        let mut stats = RetileStats {
            tiles_before: tiles,
            tiles_after: tiles,
            ..RetileStats::default()
        };
        loop {
            let step = db.defrag_step(object, budget)?;
            stats.bytes_rewritten += step.stats.bytes_moved;
            stats.elapsed_ns = stats.elapsed_ns.saturating_add(step.stats.elapsed_ns);
            if step.stats.tiles_remaining == 0 {
                return Ok((step.epoch, stats));
            }
        }
    }

    /// Creates an object on every **local** shard. Remote shards are
    /// provisioned by their own servers; attaching them requires the object
    /// to pre-exist there.
    ///
    /// # Errors
    /// [`ClusterError::Config`] if any shard is remote; engine errors.
    pub fn create_object(&self, name: &str, mdd_type: MddType, scheme: Scheme) -> Result<()> {
        let _g = self.gate.write().expect("cluster gate poisoned");
        if let Some(k) = self.backends.iter().position(|b| !b.is_local()) {
            return Err(ClusterError::Config(format!(
                "create_object needs local shards; shard {k} is remote — create the \
                 object on each shard server instead"
            )));
        }
        for b in &self.backends {
            if let ShardBackend::Local(db) = b {
                db.create_object(name, mdd_type.clone(), scheme.clone())?;
            }
        }
        Ok(())
    }

    /// The merged, epoch-consistent view of one object: hull of the shard
    /// domains, summed tiles/covered cells, per-shard epochs.
    ///
    /// # Errors
    /// Shard failures, unknown objects.
    pub fn info(&self, object: &str) -> Result<Json> {
        let mut pins = self.pin_all(None)?;
        let epochs: Vec<ShardEpoch> = pins
            .iter()
            .map(|p| ShardEpoch {
                shard: p.shard(),
                epoch: p.epoch(),
            })
            .collect();
        let objects = self.pinned_objects(&mut pins, object);
        for p in pins.drain(..) {
            p.release(&self.backends);
        }
        let objects = objects?;
        let hull = hull_of(&objects)?;
        let tiles: u64 = objects.iter().map(|o| o.tiles).sum();
        let covered: u64 = objects.iter().map(|o| o.covered_cells).sum();
        Ok(Json::obj(vec![
            ("name", Json::Str(object.to_string())),
            (
                "cell_size",
                Json::UInt(objects[0].mdd_type.cell.size as u64),
            ),
            (
                "current_domain",
                hull.map_or(Json::Null, |d| Json::Str(d.to_string())),
            ),
            ("tiles", Json::UInt(tiles)),
            ("covered_cells", Json::UInt(covered)),
            ("mdd_type", objects[0].mdd_type.to_json()),
            ("shard_epochs", epochs_json(&epochs)),
        ]))
    }

    /// Cluster status: the map plus each shard's location, health and
    /// current epoch.
    #[must_use]
    pub fn status(&self) -> Json {
        let shards = self
            .backends
            .iter()
            .enumerate()
            .map(|(k, b)| {
                let (healthy, epoch) = match b {
                    ShardBackend::Local(db) => (true, db.catalog_epoch()),
                    ShardBackend::Remote(r) => match self.remote_client(k, r) {
                        Ok(mut c) => {
                            let e = c
                                .health()
                                .ok()
                                .and_then(|h| h.get("epoch").and_then(Json::as_u64));
                            r.giveback_client(c);
                            (e.is_some(), e.unwrap_or(0))
                        }
                        Err(_) => (false, 0),
                    },
                };
                Json::obj(vec![
                    ("shard", Json::UInt(k as u64)),
                    ("location", Json::Str(b.location())),
                    ("healthy", Json::Bool(healthy)),
                    ("epoch", Json::UInt(epoch)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("shards", Json::UInt(self.backends.len() as u64)),
            ("map", self.map.to_json()),
            ("members", Json::Array(shards)),
        ])
    }

    /// Object names as seen by shard 0 (objects exist on every shard by
    /// construction).
    ///
    /// # Errors
    /// Shard failures.
    pub fn object_names(&self) -> Result<Vec<String>> {
        match &self.backends[0] {
            ShardBackend::Local(db) => Ok(db.object_names()),
            ShardBackend::Remote(r) => {
                let mut client = self.remote_client(0, r)?;
                let resp = client
                    .stats()
                    .map_err(|e| map_client_error(0, &r.addr, e))?;
                r.giveback_client(client);
                let names = resp
                    .get("objects")
                    .and_then(Json::as_array)
                    .map(|objs| {
                        objs.iter()
                            .filter_map(|o| o.get("name").and_then(Json::as_str))
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                Ok(names)
            }
        }
    }

    /// Saves every local shard into `shard-K/` under `root`.
    ///
    /// # Errors
    /// Engine persistence errors.
    pub fn save_local(&self, root: &std::path::Path) -> Result<()> {
        for (k, b) in self.backends.iter().enumerate() {
            if let ShardBackend::Local(db) = b {
                db.save(crate::shard_map::ClusterManifest::shard_dir(root, k))?;
            }
        }
        Ok(())
    }

    fn remote_client(
        &self,
        shard: usize,
        r: &crate::backend::RemoteShard,
    ) -> Result<tilestore_server::Client> {
        r.checkout_client()
            .map_err(|e: ClientError| map_client_error(shard, &r.addr, e))
    }
}

/// Per-query derived state shared by the scatter phases.
struct Prepared {
    region: Domain,
    fixed_axes: Vec<usize>,
    work: Vec<ShardWork>,
    cell: CellType,
    condenser: Option<Condenser>,
    agg_kind: Option<AggKind>,
}

/// Semantic checks that must fail before any shard work (mirrors the
/// single-engine executor's collection checks).
fn validate(query: &Query) -> Result<()> {
    if let Some(p) = &query.predicate {
        if p.collection != query.from {
            return Err(ClusterError::Query(QueryError::Semantic(format!(
                "WHERE references {:?} but FROM names {:?}",
                p.collection, query.from
            ))));
        }
    }
    access_of(&query.expr).map(|_| ())
}

/// Finds the innermost access of an expression tree, mirroring the
/// single-engine executor's shape restrictions.
fn access_of(expr: &Expr) -> Result<&Expr> {
    match expr {
        Expr::Access { .. } => Ok(expr),
        Expr::Induce { lhs, .. } => access_of(lhs),
        Expr::Condense { arg, .. } => match arg.as_ref() {
            Expr::Condense { .. } => Err(ClusterError::Query(QueryError::Semantic(
                "condensers take an array access as argument, not another condenser".to_string(),
            ))),
            inner => access_of(inner),
        },
    }
}

/// Hull of the shard current-domains (`Ok(None)` = object empty everywhere).
fn hull_of(objects: &[PinnedObject]) -> Result<Option<Domain>> {
    let mut hull: Option<Domain> = None;
    for o in objects {
        if let Some(d) = &o.current_domain {
            hull = Some(match hull {
                None => d.clone(),
                Some(h) => h.hull(d).map_err(tilestore_engine::EngineError::from)?,
            });
        }
    }
    Ok(hull)
}

/// Resolves the query's region against the cluster-wide hull and builds
/// each shard's work item.
fn prepare(query: &Query, map: &ShardMap, objects: &[PinnedObject]) -> Result<Prepared> {
    let access = access_of(&query.expr)?;
    let Expr::Access {
        collection,
        subscript,
    } = access
    else {
        unreachable!("access_of returns an access");
    };
    if collection != &query.from {
        return Err(ClusterError::Query(QueryError::Semantic(format!(
            "expression references {collection:?} but FROM names {:?}",
            query.from
        ))));
    }
    let hull = hull_of(objects)?.ok_or_else(|| {
        ClusterError::Query(QueryError::Engine(
            tilestore_engine::EngineError::EmptyObject(query.from.clone()),
        ))
    })?;
    let (region, fixed_axes) = resolve_subscript(subscript.as_deref(), &hull)?;

    let condenser = match &query.expr {
        Expr::Condense { op, .. } => Some(*op),
        _ => None,
    };
    // Avg is pushed down as Sum; the coordinator divides by the region's
    // cell count once, preserving `sum/cells` semantics exactly.
    let agg_kind = condenser.map(|op| match op {
        Condenser::Sum | Condenser::Avg => AggKind::Sum,
        Condenser::Min => AggKind::Min,
        Condenser::Max => AggKind::Max,
        Condenser::Count => AggKind::CountNonDefault,
        Condenser::Some => AggKind::SomeNonDefault,
        Condenser::All => AggKind::AllNonDefault,
    });

    let work = (0..map.shards())
        .map(|k| match map.clip(k, &region) {
            None => ShardWork::Skip,
            Some(clip) => {
                if objects[k].current_domain.is_some() {
                    ShardWork::Run(rewrite_for_shard(query, &clip).to_string())
                } else {
                    ShardWork::Default(clip)
                }
            }
        })
        .collect();

    Ok(Prepared {
        region,
        fixed_axes,
        work,
        cell: objects[0].mdd_type.cell.clone(),
        condenser,
        agg_kind,
    })
}

/// Mirrors the single-engine `resolve_access` subscript semantics against
/// the cluster-wide hull: `*` bounds resolve to the hull, points become
/// degenerate ranges and mark their axis fixed, fixing every axis is
/// rejected.
fn resolve_subscript(
    subscript: Option<&[AxisSelect]>,
    hull: &Domain,
) -> Result<(Domain, Vec<usize>)> {
    let Some(axes) = subscript else {
        return Ok((hull.clone(), Vec::new()));
    };
    if axes.len() != hull.dim() {
        return Err(ClusterError::Query(QueryError::Semantic(format!(
            "subscript has {} axes, object has {}",
            axes.len(),
            hull.dim()
        ))));
    }
    let mut region = hull.clone();
    let mut fixed_axes = Vec::new();
    for (axis, sel) in axes.iter().enumerate() {
        match sel {
            AxisSelect::All => {}
            AxisSelect::Point(c) => {
                let r = AxisRange::new(*c, *c).expect("degenerate range");
                region = region
                    .with_axis(axis, r)
                    .map_err(tilestore_engine::EngineError::from)?;
                fixed_axes.push(axis);
            }
            AxisSelect::Range { lo, hi } => {
                let lo = lo.unwrap_or_else(|| hull.lo(axis));
                let hi = hi.unwrap_or_else(|| hull.hi(axis));
                let r = AxisRange::new(lo, hi).map_err(|e| {
                    ClusterError::Query(QueryError::Semantic(format!(
                        "axis {axis}: empty range: {e}"
                    )))
                })?;
                region = region
                    .with_axis(axis, r)
                    .map_err(tilestore_engine::EngineError::from)?;
            }
        }
    }
    if fixed_axes.len() == axes.len() {
        return Err(ClusterError::Query(QueryError::Semantic(
            "section fixes every axis; at least one axis must remain".to_string(),
        )));
    }
    Ok((region, fixed_axes))
}

/// Rewrites `query` for one shard: the innermost access gets the clip as an
/// explicit full-arity subscript (points become degenerate ranges so every
/// shard returns a full-dimensional piece; the coordinator projects fixed
/// axes out once), and a top-level `avg_cells` becomes `sum_cells`.
fn rewrite_for_shard(query: &Query, clip: &Domain) -> Query {
    let mut q = query.clone();
    if let Expr::Condense { op, .. } = &mut q.expr {
        if *op == Condenser::Avg {
            *op = Condenser::Sum;
        }
    }
    replace_access(&mut q.expr, clip);
    q
}

fn replace_access(expr: &mut Expr, clip: &Domain) {
    match expr {
        Expr::Access { subscript, .. } => {
            *subscript = Some(
                clip.ranges()
                    .iter()
                    .map(|r| AxisSelect::Range {
                        lo: Some(r.lo()),
                        hi: Some(r.hi()),
                    })
                    .collect(),
            );
        }
        Expr::Induce { lhs, .. } => replace_access(lhs, clip),
        Expr::Condense { arg, .. } => replace_access(arg, clip),
    }
}

/// Computes an empty shard's piece coordinator-side: the clip filled with
/// the cell default, the induce chain applied, aggregated if the query
/// condenses. A `WHERE` predicate is a no-op on all-default data (masked
/// cells read as the default, which the cells already are).
fn default_piece(
    query: &Query,
    clip: &Domain,
    cell: &CellType,
    agg_kind: Option<AggKind>,
) -> Result<(Value, QueryStats)> {
    let inner = match &query.expr {
        Expr::Condense { arg, .. } => arg.as_ref(),
        other => other,
    };
    let (array, out_cell) = eval_default(inner, clip, cell)?;
    let stats = QueryStats {
        cells_defaulted: clip.cells(),
        ..QueryStats::default()
    };
    let value = match agg_kind {
        Some(kind) => agg_to_value(aggregate_array(&out_cell, &array, kind)?),
        None => Value::Array(array),
    };
    Ok((value, stats))
}

/// Evaluates an access-or-induce chain over an all-default array.
fn eval_default(expr: &Expr, clip: &Domain, cell: &CellType) -> Result<(Array, CellType)> {
    match expr {
        Expr::Access { .. } => Ok((Array::filled(clip.clone(), &cell.default)?, cell.clone())),
        Expr::Induce { lhs, op, rhs } => {
            let (a, c) = eval_default(lhs, clip, cell)?;
            Ok(induce_scalar(&c, &a, induced_binop(*op), *rhs)?)
        }
        Expr::Condense { .. } => Err(ClusterError::Query(QueryError::Semantic(
            "condensers produce scalars and cannot be used as array operands".to_string(),
        ))),
    }
}

fn induced_binop(op: InducedOp) -> BinOp {
    match op {
        InducedOp::Add => BinOp::Add,
        InducedOp::Sub => BinOp::Sub,
        InducedOp::Mul => BinOp::Mul,
        InducedOp::Div => BinOp::Div,
        InducedOp::Gt => BinOp::Gt,
        InducedOp::Ge => BinOp::Ge,
        InducedOp::Lt => BinOp::Lt,
        InducedOp::Le => BinOp::Le,
        InducedOp::Eq => BinOp::Eq,
        InducedOp::Ne => BinOp::Ne,
    }
}

fn agg_to_value(value: AggValue) -> Value {
    match value {
        AggValue::Number(v) => Value::Number(v),
        AggValue::Count(v) => Value::Count(v),
        AggValue::Bool(v) => Value::Bool(v),
    }
}

/// Condenser-correct scalar recombination across shard pieces.
fn combine_scalars(op: Condenser, pieces: &[Value], region_cells: u64) -> Result<Value> {
    let bad =
        |what: &str| ClusterError::Config(format!("shard returned a non-{what} piece for {op:?}"));
    let numbers = || -> Result<Vec<f64>> {
        pieces
            .iter()
            .map(|v| match v {
                Value::Number(n) => Ok(*n),
                _ => Err(bad("number")),
            })
            .collect()
    };
    Ok(match op {
        Condenser::Sum => Value::Number(numbers()?.iter().sum()),
        Condenser::Avg => {
            // Per-shard pieces are pushed-down sums; one division at the
            // end reproduces the engine's `sum / all-region-cells`.
            let sum: f64 = numbers()?.iter().sum();
            if region_cells == 0 {
                Value::Number(f64::NAN)
            } else {
                Value::Number(sum / region_cells as f64)
            }
        }
        Condenser::Min => Value::Number(numbers()?.into_iter().fold(f64::INFINITY, f64::min)),
        Condenser::Max => Value::Number(numbers()?.into_iter().fold(f64::NEG_INFINITY, f64::max)),
        Condenser::Count => {
            let mut total = 0u64;
            for v in pieces {
                match v {
                    Value::Count(c) => total += c,
                    _ => return Err(bad("count")),
                }
            }
            Value::Count(total)
        }
        Condenser::Some | Condenser::All => {
            let mut acc = op == Condenser::All;
            for v in pieces {
                match (op, v) {
                    (Condenser::Some, Value::Bool(b)) => acc = acc || *b,
                    (Condenser::All, Value::Bool(b)) => acc = acc && *b,
                    _ => return Err(bad("bool")),
                }
            }
            Value::Bool(acc)
        }
    })
}

/// Pastes the shard pieces into one result slab over `region`, then
/// projects fixed (sectioned) axes out once. The pieces partition the
/// region, so the zero-initialized slab is fully overwritten.
fn combine_arrays(region: &Domain, fixed_axes: &[usize], pieces: Vec<Value>) -> Result<Value> {
    let mut arrays = Vec::with_capacity(pieces.len());
    for p in pieces {
        match p {
            Value::Array(a) => arrays.push(a),
            _ => {
                return Err(ClusterError::Config(
                    "shard returned a scalar piece for an array query".to_string(),
                ))
            }
        }
    }
    let cell_size = arrays
        .first()
        .map(Array::cell_size)
        .ok_or_else(|| ClusterError::Config("no shard produced a piece".to_string()))?;
    let bytes = (region.cells() as usize) * cell_size;
    let mut slab = Array::from_bytes(region.clone(), cell_size, vec![0u8; bytes])?;
    for a in &arrays {
        slab.paste(a)?;
    }
    let out = if fixed_axes.is_empty() {
        slab
    } else {
        let section = region
            .project_out(fixed_axes)
            .map_err(tilestore_engine::EngineError::from)?;
        slab.reshaped(section)?
    };
    Ok(Value::Array(out))
}

/// Extracts the sub-array of `array` covering `clip` (which must be inside
/// the array's domain — clips of the array's own domain always are).
fn extract_sub_array(array: &Array, clip: &Domain) -> Result<Array> {
    let cell_size = array.cell_size();
    let mut buf = vec![0u8; (clip.cells() as usize) * cell_size];
    copy_region(
        array.domain(),
        array.bytes(),
        clip,
        &mut buf,
        clip,
        cell_size,
    )
    .map_err(tilestore_engine::EngineError::from)?;
    Ok(Array::from_bytes(clip.clone(), cell_size, buf)?)
}

/// Renders an epoch set as `[{shard, epoch}, ...]`.
#[must_use]
pub fn epochs_json(epochs: &[ShardEpoch]) -> Json {
    Json::Array(
        epochs
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("shard", Json::UInt(e.shard as u64)),
                    ("epoch", Json::UInt(e.epoch)),
                ])
            })
            .collect(),
    )
}
