//! Sharded scatter-gather serving: one logical store over N engine shards.
//!
//! The paper treats a tiling as an arbitrary, workload-driven decomposition
//! of an array's domain. This crate lifts that idea one level: a
//! [`ShardMap`] is a tiling spec used as a **partitioning function**,
//! cutting all of cell space into per-shard slabs so each shard's engine
//! stores and tiles only its own sub-domain. A [`Coordinator`] makes N
//! such engines answer as one:
//!
//! * **Reads** run the "agree on epochs" handshake — one snapshot pinned
//!   per shard at a single consistency point — then scatter the clipped
//!   query across shards on the
//!   [`ThreadPool`](tilestore_exec::ThreadPool), gather the sub-results,
//!   and stitch them into one slab (clips partition the region exactly) or
//!   recombine aggregates condenser-correctly (`sum`/`count` add,
//!   `min`/`max` fold, `avg` travels as per-shard sums).
//! * **Writes** route each cell to its owning shard under an exclusive
//!   gate, so shard epochs advance together from a reader's point of view.
//! * **Backends** are [`ShardBackend::Local`] (N in-process engines,
//!   phase 1) or [`ShardBackend::Remote`] (ordinary tilestore servers
//!   reached over the existing wire protocol with connection reuse,
//!   inherited deadlines, and typed `shard_unavailable` failures naming
//!   the broken shard — phase 2).
//! * **Serving**: [`serve_cluster`] exposes the coordinator behind the
//!   same wire protocol as a single server, so rasql clients need not know
//!   the store is sharded.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod backend;
mod coordinator;
mod error;
mod serve;
mod shard_map;

pub use backend::{PinnedObject, RemoteShard, ShardBackend, ShardExplainCounts, ShardPin};
pub use coordinator::{
    epochs_json, ClusterExplain, ClusterStatement, ClusterValue, ClusterWrite, Coordinator,
    ShardEpoch, ShardPlan,
};
pub use error::{ClusterError, Result};
pub use serve::{serve_cluster, ClusterConfig, ClusterHandle};
pub use shard_map::{ClusterManifest, ShardMap, MANIFEST_FILE};
