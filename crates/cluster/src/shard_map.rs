//! The shard map: a tiling spec as partitioning function.
//!
//! A [`ShardMap`] partitions all of cell space along one axis with a sorted
//! list of cut points — exactly the paper's "tiling as an arbitrary
//! decomposition of the domain", lifted one level up: instead of cutting an
//! object into tiles, the map cuts the *cluster's* space into per-shard
//! sub-domains. `N - 1` cuts make `N` shards:
//!
//! * shard `0` owns `(-inf, cuts[0])` along the axis,
//! * shard `k` (middle) owns `[cuts[k-1], cuts[k])`,
//! * shard `N-1` owns `[cuts[N-2], +inf)`.
//!
//! Because the slabs partition **all** of space, the per-shard clips of any
//! query region partition that region exactly: every cell of the gathered
//! result is produced by exactly one shard. Shards tile their own
//! sub-domains independently (the map does not have to align with tile
//! boundaries; it only has to be deterministic and total).

use std::path::{Path, PathBuf};

use tilestore_geometry::{AxisRange, Domain};
use tilestore_testkit::json::{FromJson, Json, JsonError, ToJson};

use crate::error::{ClusterError, Result};

/// Partitioning function from cell space to shard ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    axis: usize,
    cuts: Vec<i64>,
}

impl ShardMap {
    /// Builds a map that splits space along `axis` at the given cut points.
    ///
    /// `cuts` must be strictly increasing; `cuts.len() + 1` shards result.
    /// An empty cut list is a valid single-shard map.
    pub fn new(axis: usize, cuts: Vec<i64>) -> Result<Self> {
        if !cuts.windows(2).all(|w| w[0] < w[1]) {
            return Err(ClusterError::Config(format!(
                "shard cuts must be strictly increasing, got {cuts:?}"
            )));
        }
        Ok(ShardMap { axis, cuts })
    }

    /// Builds an `shards`-way map cutting `[origin, origin + shards*slab)`
    /// into even slabs of `slab` cells along `axis`. The outermost shards
    /// still own the infinite tails, so the map covers all of space.
    pub fn even(axis: usize, shards: usize, origin: i64, slab: u64) -> Result<Self> {
        if shards == 0 {
            return Err(ClusterError::Config("shard count must be > 0".into()));
        }
        if slab == 0 && shards > 1 {
            return Err(ClusterError::Config("slab extent must be > 0".into()));
        }
        let cuts = (1..shards)
            .map(|k| origin + (k as i64) * (slab as i64))
            .collect();
        ShardMap::new(axis, cuts)
    }

    /// Number of shards this map routes to.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The split axis.
    #[must_use]
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// The cut points (strictly increasing, `shards() - 1` of them).
    #[must_use]
    pub fn cuts(&self) -> &[i64] {
        &self.cuts
    }

    /// The half-open interval `[lo, hi)` shard `k` owns along the split
    /// axis, with `i64::MIN`/`i64::MAX` standing in for the infinite tails.
    fn slab(&self, shard: usize) -> (i64, i64) {
        let lo = if shard == 0 {
            i64::MIN
        } else {
            self.cuts[shard - 1]
        };
        let hi = if shard == self.cuts.len() {
            i64::MAX
        } else {
            self.cuts[shard]
        };
        (lo, hi)
    }

    /// Clips `region` to the sub-domain shard `shard` owns. `None` means
    /// the shard owns no part of the region. The clips over all shards
    /// partition `region` exactly.
    #[must_use]
    pub fn clip(&self, shard: usize, region: &Domain) -> Option<Domain> {
        assert!(shard < self.shards(), "shard {shard} out of range");
        if self.axis >= region.dim() {
            // A map on an axis the object does not have degenerates to
            // "shard 0 owns everything" so 1-D objects still work under a
            // map built for higher-dimensional data.
            return if shard == 0 {
                Some(region.clone())
            } else {
                None
            };
        }
        let (lo, hi) = self.slab(shard);
        let r = region.axis(self.axis);
        let clipped_lo = r.lo().max(lo);
        // Half-open slab upper bound vs inclusive axis ranges.
        let clipped_hi = if hi == i64::MAX {
            r.hi()
        } else {
            r.hi().min(hi - 1)
        };
        if clipped_lo > clipped_hi {
            return None;
        }
        let range = AxisRange::new(clipped_lo, clipped_hi).ok()?;
        region.with_axis(self.axis, range).ok()
    }

    /// The shards whose slab intersects `region`, in order.
    #[must_use]
    pub fn route(&self, region: &Domain) -> Vec<usize> {
        (0..self.shards())
            .filter(|&k| self.clip(k, region).is_some())
            .collect()
    }
}

impl ToJson for ShardMap {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("axis", Json::UInt(self.axis as u64)),
            (
                "cuts",
                Json::Array(self.cuts.iter().map(|&c| Json::Int(c)).collect()),
            ),
        ])
    }
}

impl FromJson for ShardMap {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let axis = v
            .field("axis")?
            .as_u64()
            .ok_or_else(|| JsonError::msg("axis must be an integer"))? as usize;
        let cuts = v
            .field("cuts")?
            .as_array()
            .ok_or_else(|| JsonError::msg("cuts must be an array"))?
            .iter()
            .map(|c| {
                c.as_i64()
                    .ok_or_else(|| JsonError::msg("cut must be an integer"))
            })
            .collect::<std::result::Result<Vec<i64>, JsonError>>()?;
        ShardMap::new(axis, cuts).map_err(|e| JsonError::msg(e.to_string()))
    }
}

/// On-disk description of a local cluster: the shard map plus the layout
/// convention (`shard-K/` sub-directories next to the manifest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterManifest {
    /// The partitioning function.
    pub map: ShardMap,
}

/// Manifest file name inside a cluster directory.
pub const MANIFEST_FILE: &str = "cluster.json";

impl ClusterManifest {
    /// Path of shard `k`'s database directory under the cluster root.
    #[must_use]
    pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
        root.join(format!("shard-{shard}"))
    }

    /// Writes the manifest into `root/cluster.json`.
    pub fn save(&self, root: &Path) -> Result<()> {
        std::fs::create_dir_all(root)?;
        let text = self.to_json().to_string_pretty();
        std::fs::write(root.join(MANIFEST_FILE), text)?;
        Ok(())
    }

    /// Loads the manifest from `root/cluster.json`.
    pub fn load(root: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(root.join(MANIFEST_FILE))?;
        let v = Json::parse(&text)
            .map_err(|e| ClusterError::Config(format!("bad cluster manifest: {e}")))?;
        ClusterManifest::from_json(&v)
            .map_err(|e| ClusterError::Config(format!("bad cluster manifest: {e}")))
    }

    /// Whether `root` holds a cluster manifest.
    #[must_use]
    pub fn exists(root: &Path) -> bool {
        root.join(MANIFEST_FILE).is_file()
    }
}

impl ToJson for ClusterManifest {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shards", Json::UInt(self.map.shards() as u64)),
            ("map", self.map.to_json()),
        ])
    }
}

impl FromJson for ClusterManifest {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let map = ShardMap::from_json(v.field("map")?)?;
        if let Some(n) = v.get("shards").and_then(Json::as_u64) {
            if n as usize != map.shards() {
                return Err(JsonError::msg("manifest shard count disagrees with map"));
            }
        }
        Ok(ClusterManifest { map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(bounds: &[(i64, i64)]) -> Domain {
        Domain::from_bounds(bounds).unwrap()
    }

    #[test]
    fn clips_partition_any_region() {
        let map = ShardMap::new(0, vec![10, 20, 30]).unwrap();
        assert_eq!(map.shards(), 4);
        let region = dom(&[(-5, 57), (3, 9)]);
        let clips: Vec<Domain> = (0..map.shards())
            .filter_map(|k| map.clip(k, &region))
            .collect();
        // Cells of the clips must sum to the region's cells and the clips
        // must be pairwise disjoint.
        let total: u64 = clips.iter().map(Domain::cells).sum();
        assert_eq!(total, region.cells());
        for i in 0..clips.len() {
            for j in i + 1..clips.len() {
                assert!(clips[i].intersection(&clips[j]).is_none());
            }
        }
        assert_eq!(clips[0], dom(&[(-5, 9), (3, 9)]));
        assert_eq!(clips[3], dom(&[(30, 57), (3, 9)]));
    }

    #[test]
    fn clip_outside_slab_is_none() {
        let map = ShardMap::new(0, vec![10]).unwrap();
        let region = dom(&[(0, 9)]);
        assert!(map.clip(0, &region).is_some());
        assert!(map.clip(1, &region).is_none());
    }

    #[test]
    fn even_map_and_route() {
        let map = ShardMap::even(1, 4, 0, 16).unwrap();
        assert_eq!(map.cuts(), &[16, 32, 48]);
        let region = dom(&[(0, 3), (20, 40)]);
        assert_eq!(map.route(&region), vec![1, 2]);
    }

    #[test]
    fn rejects_unsorted_cuts() {
        assert!(ShardMap::new(0, vec![5, 5]).is_err());
        assert!(ShardMap::new(0, vec![9, 3]).is_err());
    }

    #[test]
    fn manifest_round_trip() {
        let dir = tilestore_testkit::tempdir::TempDir::new().unwrap();
        let m = ClusterManifest {
            map: ShardMap::new(2, vec![-3, 8]).unwrap(),
        };
        m.save(dir.path()).unwrap();
        assert!(ClusterManifest::exists(dir.path()));
        let back = ClusterManifest::load(dir.path()).unwrap();
        assert_eq!(back, m);
    }
}
