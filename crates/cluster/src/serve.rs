//! The cluster serve endpoint: the same wire protocol, answered by a
//! [`Coordinator`] instead of a single engine.
//!
//! Clients are oblivious to sharding: `query`, `insert`, `retile`, `info`,
//! `stats`, `health` and `shutdown` behave like a single server's. Query
//! responses additionally carry `shard_epochs` — the agreed per-shard epoch
//! set of the scatter — and a new `cluster` op reports the shard map and
//! member health. Requests are handled inline on the connection thread: the
//! coordinator already scatters across shards on its own pool, so a second
//! dispatch hop would only add latency.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tilestore_engine::Array;
use tilestore_geometry::Domain;
use tilestore_server::wire::{
    err_response, hex_decode, ok_response, value_to_json, with_epoch, write_frame, ErrorCode,
    MAX_FRAME,
};
use tilestore_storage::PageStore;
use tilestore_testkit::{Json, ToJson};

use crate::coordinator::{epochs_json, ClusterStatement, Coordinator};
use crate::error::ClusterError;

/// Shutdown-flag poll interval for blocked reads and the accept loop.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Tuning knobs of a cluster endpoint.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Maximum concurrently executing requests; the next is refused `busy`.
    pub max_inflight: usize,
    /// Deadline applied to requests that carry none, in milliseconds
    /// (0 = no default deadline). Inherited by every remote shard request.
    pub default_deadline_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            max_inflight: 64,
            default_deadline_ms: 30_000,
        }
    }
}

/// Handle to a running cluster endpoint: bound address plus shutdown.
pub struct ClusterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ClusterHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown without waiting for the drain.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the endpoint to exit (drain + local shard save).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain, save local shards.
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.join();
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

struct ServeCtx<S: PageStore> {
    coord: Arc<Coordinator<S>>,
    root: Option<Arc<PathBuf>>,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<AtomicUsize>,
    config: ClusterConfig,
}

impl<S: PageStore> Clone for ServeCtx<S> {
    fn clone(&self) -> Self {
        ServeCtx {
            coord: Arc::clone(&self.coord),
            root: self.root.clone(),
            shutdown: Arc::clone(&self.shutdown),
            inflight: Arc::clone(&self.inflight),
            config: self.config.clone(),
        }
    }
}

/// Serves `coord` on `addr` (e.g. `"127.0.0.1:0"`). `root` is the cluster
/// directory for the final local-shard save; pass `None` for in-memory
/// shards.
///
/// # Errors
/// Socket bind/configuration errors.
pub fn serve_cluster<S: PageStore + 'static>(
    coord: Arc<Coordinator<S>>,
    root: Option<PathBuf>,
    addr: &str,
    config: ClusterConfig,
) -> std::io::Result<ClusterHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let ctx = ServeCtx {
        coord,
        root: root.map(Arc::new),
        shutdown: Arc::clone(&shutdown),
        inflight: Arc::new(AtomicUsize::new(0)),
        config,
    };
    let thread = std::thread::Builder::new()
        .name("tilestore-cluster-accept".to_string())
        .spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !ctx.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let ctx = ctx.clone();
                        if let Ok(h) = std::thread::Builder::new()
                            .name("tilestore-cluster-conn".to_string())
                            .spawn(move || connection_loop(stream, &ctx))
                        {
                            conns.push(h);
                        }
                        conns.retain(|h| !h.is_finished());
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            for h in conns {
                let _ = h.join();
            }
            if let Some(root) = &ctx.root {
                let _ = ctx.coord.save_local(root.as_path());
            }
        })?;
    Ok(ClusterHandle {
        addr: local,
        shutdown,
        thread: Some(thread),
    })
}

/// Reads one frame, polling the shutdown flag between read timeouts.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) && filled == 0 {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

fn connection_loop<S: PageStore + 'static>(mut stream: TcpStream, ctx: &ServeCtx<S>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame_interruptible(&mut stream, &ctx.shutdown) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let response = match std::str::from_utf8(&frame)
            .map_err(|e| e.to_string())
            .and_then(|s| Json::parse(s).map_err(|e| e.to_string()))
        {
            Ok(req) => dispatch(ctx, &req),
            Err(e) => err_response(0, ErrorCode::BadRequest, &format!("malformed frame: {e}")),
        };
        if write_frame(&mut stream, response.to_string_compact().as_bytes()).is_err() {
            return;
        }
    }
}

/// Maps a cluster failure to a wire error response.
fn cluster_err(id: u64, e: &ClusterError) -> Json {
    let code = match e {
        ClusterError::ShardUnavailable { .. } => ErrorCode::ShardUnavailable,
        ClusterError::Deadline { .. } => ErrorCode::Deadline,
        ClusterError::Config(_) | ClusterError::Unsupported { .. } => ErrorCode::BadRequest,
        ClusterError::Query(q) => match q {
            tilestore_rasql::QueryError::Engine(_) => ErrorCode::Engine,
            _ => ErrorCode::BadRequest,
        },
        ClusterError::Remote { .. } | ClusterError::Io(_) => ErrorCode::Engine,
    };
    err_response(id, code, &e.to_string())
}

fn dispatch<S: PageStore + 'static>(ctx: &ServeCtx<S>, req: &Json) -> Json {
    let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
    let Some(op) = req.get("op").and_then(Json::as_str) else {
        return err_response(id, ErrorCode::BadRequest, "missing op");
    };
    if op == "shutdown" {
        ctx.shutdown.store(true, Ordering::SeqCst);
        return ok_response(id, Json::Str("shutting down".to_string()));
    }
    if ctx.shutdown.load(Ordering::SeqCst) {
        return err_response(id, ErrorCode::Shutdown, "cluster is shutting down");
    }
    let cur = ctx.inflight.fetch_add(1, Ordering::SeqCst);
    if cur >= ctx.config.max_inflight {
        ctx.inflight.fetch_sub(1, Ordering::SeqCst);
        return err_response(
            id,
            ErrorCode::Busy,
            &format!(
                "{cur} requests in flight (limit {})",
                ctx.config.max_inflight
            ),
        );
    }
    let deadline_ms = req
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .unwrap_or(ctx.config.default_deadline_ms);
    let deadline = (deadline_ms > 0).then_some(deadline_ms);
    let response = handle(ctx, id, op, req, deadline);
    ctx.inflight.fetch_sub(1, Ordering::SeqCst);
    response
}

fn handle<S: PageStore + 'static>(
    ctx: &ServeCtx<S>,
    id: u64,
    op: &str,
    req: &Json,
    deadline_ms: Option<u64>,
) -> Json {
    match op {
        "ping" => ok_response(id, Json::Str("pong".to_string())),
        "query" => {
            let Some(q) = req.get("q").and_then(Json::as_str) else {
                return err_response(id, ErrorCode::BadRequest, "query needs a `q` string");
            };
            match ctx.coord.execute_with(q, deadline_ms) {
                Ok(ClusterStatement::Value(v)) => {
                    let epoch = v.epochs.iter().map(|e| e.epoch).max().unwrap_or(0);
                    let mut json = value_to_json(&v.value, &v.stats, epoch);
                    if let Json::Object(fields) = &mut json {
                        fields.push(("shard_epochs".to_string(), epochs_json(&v.epochs)));
                    }
                    ok_response(id, json)
                }
                Ok(ClusterStatement::Explain(e)) => ok_response(id, e.to_json()),
                Err(e) => cluster_err(id, &e),
            }
        }
        "insert" => {
            let (Some(object), Some(domain), Some(cells_hex)) = (
                req.get("object").and_then(Json::as_str),
                req.get("domain").and_then(Json::as_str),
                req.get("cells_hex").and_then(Json::as_str),
            ) else {
                return err_response(
                    id,
                    ErrorCode::BadRequest,
                    "insert needs `object`, `domain` and `cells_hex`",
                );
            };
            let Ok(domain) = domain.parse::<Domain>() else {
                return err_response(id, ErrorCode::BadRequest, "unparseable domain");
            };
            let cells = match hex_decode(cells_hex) {
                Ok(c) => c,
                Err(e) => return err_response(id, ErrorCode::BadRequest, &e),
            };
            let dom_cells = domain.cells() as usize;
            if dom_cells == 0 || cells.len() % dom_cells != 0 {
                return err_response(
                    id,
                    ErrorCode::BadRequest,
                    "cell payload does not tile the domain",
                );
            }
            let array = match Array::from_bytes(domain, cells.len() / dom_cells, cells) {
                Ok(a) => a,
                Err(e) => return err_response(id, ErrorCode::Engine, &e.to_string()),
            };
            match ctx.coord.insert(object, &array) {
                Ok(w) => {
                    let epoch = w.per_shard.iter().map(|(_, e, _)| *e).max().unwrap_or(0);
                    ok_response(id, with_epoch(w.merged().to_json(), epoch))
                }
                Err(e) => cluster_err(id, &e),
            }
        }
        "retile" => {
            let (Some(object), Some(spec)) = (
                req.get("object").and_then(Json::as_str),
                req.get("scheme").and_then(Json::as_str),
            ) else {
                return err_response(
                    id,
                    ErrorCode::BadRequest,
                    "retile needs an `object` and a `scheme` spec",
                );
            };
            match ctx.coord.retile(object, spec) {
                Ok(w) => {
                    let epoch = w.per_shard.iter().map(|(_, e, _)| *e).max().unwrap_or(0);
                    ok_response(id, with_epoch(w.merged().to_json(), epoch))
                }
                Err(e) => cluster_err(id, &e),
            }
        }
        "info" => {
            let Some(object) = req.get("object").and_then(Json::as_str) else {
                return err_response(id, ErrorCode::BadRequest, "info needs an `object`");
            };
            match ctx.coord.info(object) {
                Ok(j) => ok_response(id, j),
                Err(e) => cluster_err(id, &e),
            }
        }
        "stats" => match ctx.coord.object_names() {
            Ok(names) => ok_response(
                id,
                Json::obj(vec![
                    (
                        "objects",
                        Json::Array(names.into_iter().map(Json::Str).collect()),
                    ),
                    ("cluster", ctx.coord.status()),
                ]),
            ),
            Err(e) => cluster_err(id, &e),
        },
        "cluster" => ok_response(id, ctx.coord.status()),
        "health" => {
            let status = ctx.coord.status();
            let all_healthy = status
                .get("members")
                .and_then(Json::as_array)
                .is_some_and(|m| {
                    m.iter()
                        .all(|s| s.get("healthy").and_then(Json::as_bool) == Some(true))
                });
            ok_response(
                id,
                Json::obj(vec![
                    (
                        "status",
                        Json::Str(if all_healthy { "ok" } else { "degraded" }.to_string()),
                    ),
                    ("cluster", status),
                ]),
            )
        }
        other => err_response(id, ErrorCode::BadRequest, &format!("unknown op {other:?}")),
    }
}
