//! The cluster serve endpoint speaks the ordinary wire protocol: a stock
//! [`Client`] pointed at `serve_cluster` cannot tell it is talking to N
//! shards instead of one engine — except for the additive `shard_epochs`
//! field in query responses and the `cluster` op.

use std::sync::Arc;

use tilestore_cluster::{serve_cluster, ClusterConfig, Coordinator, ShardBackend, ShardMap};
use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_exec::ThreadPool;
use tilestore_geometry::DefDomain;
use tilestore_server::{Client, RemoteValue};
use tilestore_storage::MemPageStore;
use tilestore_testkit::Json;
use tilestore_tiling::{AlignedTiling, Scheme};

fn cube() -> Array {
    Array::from_fn("[0:9,0:9]".parse().unwrap(), |p| (p[0] * 10 + p[1]) as u32).unwrap()
}

fn cluster_endpoint() -> (tilestore_cluster::ClusterHandle, Database<MemPageStore>) {
    let map = ShardMap::new(0, vec![3, 6]).unwrap();
    let backends = (0..3)
        .map(|_| ShardBackend::Local(SharedDatabase::new(Database::in_memory().unwrap())))
        .collect();
    let coord = Coordinator::new(map, backends, Arc::new(ThreadPool::new(2))).unwrap();
    coord
        .create_object(
            "cube",
            MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 256)),
        )
        .unwrap();
    coord.insert("cube", &cube()).unwrap();
    let handle = serve_cluster(
        Arc::new(coord),
        None,
        "127.0.0.1:0",
        ClusterConfig::default(),
    )
    .unwrap();

    let single = Database::in_memory().unwrap();
    single
        .create_object(
            "cube",
            MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 256)),
        )
        .unwrap();
    single.insert("cube", &cube()).unwrap();
    (handle, single)
}

#[test]
fn wire_clients_see_one_logical_store() {
    let (handle, single) = cluster_endpoint();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    for q in [
        "SELECT cube FROM cube",
        "SELECT cube[2:7, 1:4] FROM cube",
        "SELECT sum_cells(cube) FROM cube",
        "SELECT avg_cells(cube[1:8, 0:9]) FROM cube",
        "SELECT count_cells(cube > 50) FROM cube",
        "SELECT cube[4:5, *] FROM cube WHERE cube >= 41",
    ] {
        let want = tilestore_rasql::execute(&single.begin_read(), q).unwrap().0;
        match (client.query(q).unwrap(), want) {
            (
                RemoteValue::Array {
                    domain,
                    cells,
                    cell_size,
                },
                tilestore_rasql::Value::Array(a),
            ) => {
                assert_eq!(&domain, a.domain(), "{q}");
                assert_eq!(cell_size, a.cell_size(), "{q}");
                assert_eq!(cells, a.bytes(), "{q}");
            }
            (RemoteValue::Number(n), tilestore_rasql::Value::Number(m)) => {
                assert_eq!(n.to_bits(), m.to_bits(), "{q}");
            }
            (RemoteValue::Count(c), tilestore_rasql::Value::Count(d)) => {
                assert_eq!(c, d, "{q}")
            }
            (RemoteValue::Bool(b), tilestore_rasql::Value::Bool(c)) => {
                assert_eq!(b, c, "{q}")
            }
            (got, want) => panic!("{q}: kind mismatch {got:?} vs {want:?}"),
        }
    }

    // Raw responses expose the per-shard epoch vector.
    let raw = client
        .query_raw("SELECT sum_cells(cube) FROM cube")
        .unwrap();
    let epochs = raw.get("shard_epochs").and_then(Json::as_array).unwrap();
    assert_eq!(epochs.len(), 3);

    // EXPLAIN through the wire reports the per-shard plan.
    let raw = client.query_raw("EXPLAIN SELECT cube FROM cube").unwrap();
    let shards = raw.get("shards").and_then(Json::as_array).unwrap();
    assert_eq!(shards.len(), 3);
    for s in shards {
        assert!(s.get("shard").and_then(Json::as_u64).is_some());
        assert!(s.get("epoch").and_then(Json::as_u64).is_some());
        assert!(s.get("sub_domain").is_some());
    }

    // info / stats / health / cluster report the merged view.
    let info = client.info("cube").unwrap();
    assert_eq!(
        info.get("current_domain").and_then(Json::as_str),
        Some("[0:9,0:9]")
    );
    let health = client.health().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let stats = client.stats().unwrap();
    let members = stats
        .get("cluster")
        .and_then(|c| c.get("members"))
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(members.len(), 3);

    handle.shutdown();
}

#[test]
fn wire_writes_route_through_the_coordinator() {
    let (handle, single) = cluster_endpoint();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Grow the array through the wire; the stripe lands on shard 2 only.
    let stripe = Array::from_fn("[10:10,0:9]".parse().unwrap(), |p| {
        (p[0] * 10 + p[1]) as u32
    })
    .unwrap();
    single.insert("cube", &stripe).unwrap();
    let resp = client.insert("cube", &stripe).unwrap();
    assert!(resp.get("epoch").and_then(Json::as_u64).is_some());

    let want = tilestore_rasql::execute(&single.begin_read(), "SELECT cube FROM cube")
        .unwrap()
        .0;
    let RemoteValue::Array { domain, cells, .. } = client.query("SELECT cube FROM cube").unwrap()
    else {
        panic!("expected array");
    };
    let tilestore_rasql::Value::Array(a) = want else {
        panic!("expected array")
    };
    assert_eq!(&domain, a.domain());
    assert_eq!(cells, a.bytes());

    // Retile through the wire, then re-check a seam-straddling read.
    client.retile("cube", "aligned:[*,1]:1").unwrap();
    let RemoteValue::Array { cells, .. } = client.query("SELECT cube[2:8, 3:6] FROM cube").unwrap()
    else {
        panic!("expected array");
    };
    let tilestore_rasql::Value::Array(b) =
        tilestore_rasql::execute(&single.begin_read(), "SELECT cube[2:8, 3:6] FROM cube")
            .unwrap()
            .0
    else {
        panic!("expected array");
    };
    assert_eq!(cells, b.bytes());

    handle.shutdown();
}
