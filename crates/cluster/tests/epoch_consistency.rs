//! Epoch-agreement under concurrent writes: every cross-shard read pins one
//! snapshot per shard at a single consistency point, so a query racing a
//! cluster write (or a retile on one shard) observes either the entire old
//! state or the entire new state — never a mix.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use tilestore_cluster::{ClusterStatement, Coordinator, ShardBackend, ShardMap};
use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_exec::ThreadPool;
use tilestore_geometry::{DefDomain, Domain};
use tilestore_rasql::Value;
use tilestore_storage::MemPageStore;
use tilestore_tiling::{AlignedTiling, Scheme};

const SHARDS: usize = 4;
const WRITES: u32 = 24;

fn filled(value: u32) -> Array {
    Array::from_fn("[0:7,0:7]".parse().unwrap(), |_| value).unwrap()
}

/// A full-height one-column stripe at `x = k`, valued `k` everywhere. It
/// spans all four row-slabs, so inserting it advances every shard's epoch
/// in one cluster commit.
fn stripe(k: u32) -> Array {
    let domain: Domain = format!("[0:7,{k}:{k}]").parse().unwrap();
    Array::from_fn(domain, |_| k).unwrap()
}

fn build() -> (Coordinator<MemPageStore>, Vec<SharedDatabase<MemPageStore>>) {
    let map = ShardMap::new(0, vec![2, 4, 6]).unwrap();
    let dbs: Vec<SharedDatabase<MemPageStore>> = (0..SHARDS)
        .map(|_| SharedDatabase::new(Database::in_memory().unwrap()))
        .collect();
    let backends = dbs
        .iter()
        .map(|db| ShardBackend::Local(db.clone()))
        .collect();
    let coord = Coordinator::new(map, backends, Arc::new(ThreadPool::new(2))).unwrap();
    coord
        .create_object(
            "a",
            MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 64)),
        )
        .unwrap();
    (coord, dbs)
}

/// A writer grows the array one full-height stripe per commit (stripe `k`
/// is valued `k`) while a reader streams full-array queries. Because every
/// stripe spans all four shards, a torn epoch set would pin some shard
/// before stripe `k` and another after it, and the gathered slab would show
/// default zeros inside a column that the hull says exists. The epoch
/// vector of every answer must equal the vector some single write produced.
#[test]
fn concurrent_cluster_writes_never_tear_the_epoch_set() {
    let (coord, dbs) = build();
    let w0 = coord.insert("a", &stripe(0)).unwrap();
    let baseline_snapshots: Vec<u64> = dbs.iter().map(|db| db.live_snapshots()).collect();

    // stripe -> epoch vector recorded by the writer after each commit.
    type EpochLog = Arc<Mutex<Vec<(u32, Vec<u64>)>>>;
    let recorded: EpochLog = Arc::new(Mutex::new(vec![(
        0,
        w0.per_shard.iter().map(|(_, e, _)| *e).collect(),
    )]));
    let done = AtomicBool::new(false);

    let observed: Mutex<Vec<(u32, Vec<u64>)>> = Mutex::new(Vec::new());
    thread::scope(|s| {
        let coord = &coord;
        let recorded = Arc::clone(&recorded);
        let done = &done;
        s.spawn(move || {
            for k in 1..=WRITES {
                let w = coord.insert("a", &stripe(k)).unwrap();
                recorded
                    .lock()
                    .unwrap()
                    .push((k, w.per_shard.iter().map(|(_, e, _)| *e).collect()));
            }
            done.store(true, Ordering::Release);
        });
        let check = |expect_final: Option<u32>| {
            let ClusterStatement::Value(got) = coord.execute("SELECT a FROM a").unwrap() else {
                panic!("unexpected explain");
            };
            let Value::Array(a) = &got.value else {
                panic!("expected array");
            };
            // Hull is [0:7, 0:k] for the pinned write k; cell (y, x) == x.
            let k = a.domain().hi(1) as u32;
            if let Some(want) = expect_final {
                assert_eq!(k, want, "final read missed the last write");
            }
            let cells: Vec<u32> = a
                .bytes()
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for (i, &c) in cells.iter().enumerate() {
                let x = (i as u32) % (k + 1);
                assert_eq!(c, x, "torn read at cell {i}: hull says stripe {x} exists");
            }
            let epochs: Vec<u64> = got.epochs.iter().map(|e| e.epoch).collect();
            observed.lock().unwrap().push((k, epochs));
        };
        while !done.load(Ordering::Acquire) {
            check(None);
            thread::yield_now();
        }
        check(Some(WRITES));
    });

    let recorded = recorded.lock().unwrap();
    for (k, epochs) in observed.lock().unwrap().iter() {
        let want = &recorded.iter().find(|(rk, _)| rk == k).unwrap().1;
        assert_eq!(
            epochs, want,
            "stripe {k} answered with epoch set {epochs:?}, write committed {want:?}"
        );
    }
    // The handshake releases every pin: no snapshot leaks on any shard.
    for (db, base) in dbs.iter().zip(&baseline_snapshots) {
        assert_eq!(db.live_snapshots(), *base);
    }
}

/// A retile on ONE shard (directly on its engine, bypassing the coordinator)
/// moves tiles around without changing cells. Concurrent cluster queries must
/// keep answering correctly: each pins a snapshot per shard, so the rewrite
/// on shard 2 is invisible mid-query, and only shard 2's epoch advances.
#[test]
fn query_concurrent_with_single_shard_retile_observes_one_consistent_epoch_set() {
    let (coord, dbs) = build();
    coord.insert("a", &filled(7)).unwrap();

    let victim = dbs[2].clone();
    thread::scope(|s| {
        s.spawn(move || {
            for i in 0..WRITES {
                let spec = if i % 2 == 0 {
                    "aligned:[*,1]:1"
                } else {
                    "regular:1"
                };
                let scheme = tilestore_tiling::parse_scheme_spec(spec, 2).expect("scheme");
                victim.retile("a", scheme).unwrap();
            }
        });
        let mut last_victim_epoch = 0u64;
        let mut steady: Option<Vec<u64>> = None;
        for _ in 0..WRITES {
            let ClusterStatement::Value(got) = coord.execute("SELECT sum_cells(a) FROM a").unwrap()
            else {
                panic!("unexpected explain");
            };
            let Value::Number(n) = got.value else {
                panic!("expected number")
            };
            // 8*8 cells of 7 regardless of how any shard is tiled.
            assert_eq!(n.to_bits(), (64.0f64 * 7.0).to_bits());
            let epochs: Vec<u64> = got.epochs.iter().map(|e| e.epoch).collect();
            assert_eq!(epochs.len(), SHARDS);
            // Only the retiled shard moves; the others hold their epoch.
            assert!(epochs[2] >= last_victim_epoch, "epoch went backwards");
            last_victim_epoch = epochs[2];
            let others: Vec<u64> = epochs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 2)
                .map(|(_, e)| *e)
                .collect();
            match &steady {
                Some(s) => assert_eq!(s, &others, "untouched shard epoch moved"),
                None => steady = Some(others),
            }
        }
    });
    for db in &dbs {
        assert_eq!(db.live_snapshots(), 0);
    }
}
