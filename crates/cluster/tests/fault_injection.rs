//! Partial-failure semantics over remote shards: when one shard dies
//! mid-scatter the coordinator reports a typed `shard_unavailable` error
//! naming the broken shard within the request deadline, and the epoch
//! handshake releases every pin it took — surviving shards end with
//! `live_snapshots` back at baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tilestore_cluster::{
    ClusterError, ClusterStatement, Coordinator, RemoteShard, ShardBackend, ShardMap,
};
use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_exec::ThreadPool;
use tilestore_geometry::DefDomain;
use tilestore_rasql::Value;
use tilestore_server::{serve, ServerConfig};
use tilestore_storage::MemPageStore;
use tilestore_tiling::{AlignedTiling, Scheme};

fn mdd() -> MddType {
    MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap())
}

fn seed(db: &SharedDatabase<MemPageStore>, lo: i64, hi: i64) {
    db.create_object("a", mdd(), Scheme::Aligned(AlignedTiling::regular(2, 64)))
        .unwrap();
    let domain = format!("[{lo}:{hi},0:7]").parse().unwrap();
    db.insert(
        "a",
        &Array::from_fn(domain, |p| (p[0] * 10 + p[1]) as u32).unwrap(),
    )
    .unwrap();
}

#[test]
fn killed_shard_yields_shard_unavailable_and_leaks_no_pins() {
    // Two real servers on loopback, rows 0..=3 on shard 0, rows 4..=7 on
    // shard 1 — exactly what a cluster insert through the map would place.
    let db0 = SharedDatabase::new(Database::in_memory().unwrap());
    let db1 = SharedDatabase::new(Database::in_memory().unwrap());
    seed(&db0, 0, 3);
    seed(&db1, 4, 7);
    let srv0 = serve(db0.clone(), None, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let srv1 = serve(db1.clone(), None, "127.0.0.1:0", ServerConfig::default()).unwrap();

    let map = ShardMap::new(0, vec![4]).unwrap();
    let backends = vec![
        ShardBackend::Remote(RemoteShard::new(srv0.addr().to_string())),
        ShardBackend::Remote(RemoteShard::new(srv1.addr().to_string())),
    ];
    let coord =
        Coordinator::<MemPageStore>::new(map, backends, Arc::new(ThreadPool::new(2))).unwrap();

    // Healthy cluster first: a seam-straddling query answers correctly.
    let ClusterStatement::Value(got) = coord
        .execute_with("SELECT a[2:5, 1:3] FROM a", Some(5_000))
        .unwrap()
    else {
        panic!("unexpected explain");
    };
    let Value::Array(a) = &got.value else {
        panic!("expected array")
    };
    assert_eq!(a.domain().to_string(), "[2:5,1:3]");
    for (i, chunk) in a.bytes().chunks_exact(4).enumerate() {
        let (x, y) = (2 + (i as i64) / 3, 1 + (i as i64) % 3);
        assert_eq!(
            u32::from_le_bytes(chunk.try_into().unwrap()),
            (x * 10 + y) as u32
        );
    }
    assert_eq!(got.epochs.len(), 2);

    let baseline0 = db0.live_snapshots();
    let baseline1 = db1.live_snapshots();

    // Kill shard 1 and query again: the coordinator must fail fast with a
    // typed error naming the dead shard, well inside the deadline.
    srv1.shutdown();
    let started = Instant::now();
    let err = coord
        .execute_with("SELECT a[2:5, 1:3] FROM a", Some(10_000))
        .unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "error took longer than the deadline"
    );
    match &err {
        ClusterError::ShardUnavailable { shard, .. } => assert_eq!(*shard, 1),
        other => panic!("expected shard_unavailable, got {other}"),
    }
    let rendered = err.to_string();
    assert!(rendered.contains("shard 1"), "{rendered}");

    // The handshake released shard 0's pin even though shard 1 broke: no
    // snapshot leaked on the survivor (retries may take a moment to settle).
    let deadline = Instant::now() + Duration::from_secs(5);
    while db0.live_snapshots() > baseline0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(db0.live_snapshots(), baseline0, "leaked pin on survivor");

    // The epoch handshake pins every shard (the hull of the object lives
    // across all of them), so follow-up queries keep failing fast with the
    // same typed error — now on the connection-refused path, since the dead
    // shard's pooled connection is gone — and still leak nothing.
    let started = Instant::now();
    let err = coord
        .execute_with("SELECT sum_cells(a[0:3, 0:7]) FROM a", Some(10_000))
        .unwrap_err();
    assert!(started.elapsed() < Duration::from_secs(10));
    match &err {
        ClusterError::ShardUnavailable { shard, .. } => assert_eq!(*shard, 1),
        other => panic!("expected shard_unavailable, got {other}"),
    }
    assert_eq!(db0.live_snapshots(), baseline0, "leaked pin on survivor");

    srv0.shutdown();
    let _ = baseline1;
}

#[test]
fn remote_and_local_backends_agree() {
    // The same data served two ways — one remote pair, one local pair —
    // answers identically, proving the rewrite/clip path is backend-blind.
    let db0 = SharedDatabase::new(Database::in_memory().unwrap());
    let db1 = SharedDatabase::new(Database::in_memory().unwrap());
    seed(&db0, 0, 3);
    seed(&db1, 4, 7);
    let srv0 = serve(db0.clone(), None, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let srv1 = serve(db1.clone(), None, "127.0.0.1:0", ServerConfig::default()).unwrap();

    let pool = Arc::new(ThreadPool::new(2));
    let remote = Coordinator::<MemPageStore>::new(
        ShardMap::new(0, vec![4]).unwrap(),
        vec![
            ShardBackend::Remote(RemoteShard::new(srv0.addr().to_string())),
            ShardBackend::Remote(RemoteShard::new(srv1.addr().to_string())),
        ],
        Arc::clone(&pool),
    )
    .unwrap();
    let local = Coordinator::new(
        ShardMap::new(0, vec![4]).unwrap(),
        vec![
            ShardBackend::Local(db0.clone()),
            ShardBackend::Local(db1.clone()),
        ],
        pool,
    )
    .unwrap();

    for q in [
        "SELECT a FROM a",
        "SELECT a[1:6, 2:5] FROM a",
        "SELECT a[3:4, 0:7] + 5 FROM a",
        "SELECT avg_cells(a) FROM a",
        "SELECT max_cells(a[0:7, 3:3]) FROM a",
        "SELECT count_cells(a > 40) FROM a",
        "SELECT a FROM a WHERE a >= 31",
        "SELECT min_cells(a) FROM a WHERE a != 0",
    ] {
        let ClusterStatement::Value(r) = remote.execute_with(q, Some(5_000)).unwrap() else {
            panic!("{q}: unexpected explain");
        };
        let ClusterStatement::Value(l) = local.execute(q).unwrap() else {
            panic!("{q}: unexpected explain");
        };
        match (&r.value, &l.value) {
            (Value::Array(a), Value::Array(b)) => {
                assert_eq!(a.domain(), b.domain(), "{q}");
                assert_eq!(a.bytes(), b.bytes(), "{q}");
            }
            (Value::Number(n), Value::Number(m)) => {
                assert_eq!(n.to_bits(), m.to_bits(), "{q}");
            }
            (Value::Count(c), Value::Count(d)) => assert_eq!(c, d, "{q}"),
            (Value::Bool(b), Value::Bool(c)) => assert_eq!(b, c, "{q}"),
            (a, b) => panic!("{q}: kind mismatch {a:?} vs {b:?}"),
        }
        assert_eq!(r.epochs.len(), 2, "{q}");
    }

    // Remote EXPLAIN carries per-shard counts from the live servers.
    let ClusterStatement::Explain(report) = remote
        .execute_with("EXPLAIN SELECT a FROM a", Some(5_000))
        .unwrap()
    else {
        panic!("expected explain");
    };
    assert_eq!(report.shards.len(), 2);
    assert!(report.fetched() > 0);
    assert!(report.shards.iter().all(|s| s.sub_domain.is_some()));

    // No pins left behind on either server by any of the above.
    let deadline = Instant::now() + Duration::from_secs(5);
    while (db0.live_snapshots() > 0 || db1.live_snapshots() > 0) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!((db0.live_snapshots(), db1.live_snapshots()), (0, 0));

    srv0.shutdown();
    srv1.shutdown();
}
