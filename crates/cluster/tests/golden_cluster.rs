//! Golden equivalence for the scatter-gather path: a 4-shard in-process
//! cluster must answer the full rasql corpus byte-identically (arrays) or
//! bit-identically (scalars) to one single-engine database holding the
//! same cells.

use std::sync::Arc;

use tilestore_cluster::{ClusterStatement, Coordinator, ShardBackend, ShardMap};
use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_exec::ThreadPool;
use tilestore_rasql::{parse, parse_statement, Statement, Value};
use tilestore_storage::MemPageStore;
use tilestore_testkit::{Json, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// Same corpus as the server's golden test: every result kind, trims,
/// sections, wildcard ranges, induced operations, aggregates, WHERE.
const GOLDEN: &[&str] = &[
    "SELECT cube FROM cube",
    "SELECT cube[2:4, 0:9, 5:7] FROM cube",
    "SELECT cube[*:*, 3:3, 2:*] FROM cube",
    "SELECT cube[5, *, 2:3] FROM cube",
    "SELECT sum_cells(cube[0:3, 0:3, 0:3]) FROM cube",
    "SELECT avg_cells(cube[1:2, 1:2, 1:2]) FROM cube",
    "SELECT max_cells(cube) FROM cube",
    "SELECT min_cells(cube[4:9, 0:5, 1:8]) FROM cube",
    "SELECT count_cells(cube > 500) FROM cube",
    "SELECT some_cells(cube > 980) FROM cube",
    "SELECT all_cells(cube >= 0) FROM cube",
    "SELECT cube[0:0, 0:0, 0:3] + 1000 FROM cube",
    "SELECT cube[0:0, 0:0, *] > 4 FROM cube",
    "SELECT cube[0:0, 1:1, 0:2] * 2 - 10 FROM cube",
    "SELECT cube[5, *, *] + 0.0 FROM cube",
    "SELECT sum_cells(cube[0:0, 0:0, *] >= 5) FROM cube",
    "SELECT cube FROM cube WHERE cube > 900",
    "SELECT cube[2:4, 0:9, 5:7] FROM cube WHERE cube <= 300",
    "SELECT cube[0:0, 0:0, *] + 1 FROM cube WHERE cube >= 5",
    "SELECT count_cells(cube) FROM cube WHERE cube > 500",
    "SELECT sum_cells(cube) FROM cube WHERE cube >= 998",
    "SELECT max_cells(cube) FROM cube WHERE cube < 100",
    "SELECT min_cells(cube[4:9, 0:5, 1:8]) FROM cube WHERE cube != 455",
    "SELECT some_cells(cube) FROM cube WHERE cube > 2000",
    "SELECT all_cells(cube) FROM cube WHERE cube = 7",
];

fn cube_type() -> MddType {
    MddType::new(CellType::of::<u32>(), "[0:*,0:*,0:*]".parse().unwrap())
}

fn cube_cells() -> Array {
    Array::from_fn("[0:9,0:9,0:9]".parse().unwrap(), |p| {
        (p[0] * 100 + p[1] * 10 + p[2]) as u32
    })
    .unwrap()
}

fn single_engine() -> Database<MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "cube",
        cube_type(),
        Scheme::Aligned(AlignedTiling::regular(3, 2048)),
    )
    .unwrap();
    db.insert("cube", &cube_cells()).unwrap();
    db
}

fn cluster(shards: usize) -> Coordinator<MemPageStore> {
    // Cuts along axis 0 every 3 rows: seam-straddling regions are the norm
    // for the corpus, and with enough shards the tail ones own no data.
    let map = ShardMap::even(0, shards, 0, 3).unwrap();
    let backends = (0..shards)
        .map(|_| ShardBackend::Local(SharedDatabase::new(Database::in_memory().unwrap())))
        .collect();
    let coord = Coordinator::new(map, backends, Arc::new(ThreadPool::new(2))).unwrap();
    coord
        .create_object(
            "cube",
            cube_type(),
            Scheme::Aligned(AlignedTiling::regular(3, 2048)),
        )
        .unwrap();
    coord.insert("cube", &cube_cells()).unwrap();
    coord
}

fn assert_same(q: &str, want: &Value, got: &Value) {
    match (want, got) {
        (Value::Array(a), Value::Array(b)) => {
            assert_eq!(a.domain(), b.domain(), "{q}: domain");
            assert_eq!(a.cell_size(), b.cell_size(), "{q}: cell size");
            assert_eq!(a.bytes(), b.bytes(), "{q}: cell bytes");
        }
        (Value::Number(n), Value::Number(m)) => {
            assert_eq!(n.to_bits(), m.to_bits(), "{q}: number bits");
        }
        (Value::Count(c), Value::Count(d)) => assert_eq!(c, d, "{q}: count"),
        (Value::Bool(b), Value::Bool(c)) => assert_eq!(b, c, "{q}: bool"),
        (want, got) => panic!("{q}: kind mismatch: {want:?} vs {got:?}"),
    }
}

#[test]
fn four_shard_cluster_matches_single_engine_on_the_full_corpus() {
    let single = single_engine();
    let coord = cluster(4);
    for q in GOLDEN {
        let want = tilestore_rasql::execute(&single.begin_read(), q)
            .unwrap_or_else(|e| panic!("{q}: single: {e}"))
            .0;
        let got = match coord
            .execute(q)
            .unwrap_or_else(|e| panic!("{q}: cluster: {e}"))
        {
            ClusterStatement::Value(v) => v,
            ClusterStatement::Explain(_) => panic!("{q}: unexpected explain"),
        };
        assert_same(q, &want, &got.value);
        assert_eq!(got.epochs.len(), 4, "{q}: one epoch per shard");
    }
}

#[test]
fn shard_counts_do_not_change_answers() {
    // 1 shard (degenerate map), 2, and 8 (tail shards own no data) all
    // agree with the single engine.
    let single = single_engine();
    for shards in [1usize, 2, 8] {
        let coord = cluster(shards);
        for q in GOLDEN {
            let want = tilestore_rasql::execute(&single.begin_read(), q).unwrap().0;
            let got = match coord
                .execute(q)
                .unwrap_or_else(|e| panic!("{q}: {shards} shards: {e}"))
            {
                ClusterStatement::Value(v) => v,
                ClusterStatement::Explain(_) => panic!("{q}: unexpected explain"),
            };
            assert_same(&format!("{q} ({shards} shards)"), &want, &got.value);
        }
    }
}

#[test]
fn cluster_explain_reports_per_shard_plans() {
    let coord = cluster(4);
    let ClusterStatement::Explain(report) = coord
        .execute("EXPLAIN SELECT cube FROM cube WHERE cube > 900")
        .unwrap()
    else {
        panic!("expected explain");
    };
    assert_eq!(report.shards.len(), 4);
    assert_eq!(report.region.to_string(), "[0:9,0:9,0:9]");
    assert_eq!(report.predicate.as_deref(), Some("cube > 900"));
    // The sub-domains partition the region.
    let owned: u64 = report
        .shards
        .iter()
        .filter_map(|s| s.sub_domain.as_ref().map(|d| d.cells()))
        .sum();
    assert_eq!(owned, 1000);
    // Only the top rows (900..=999 live at x=9) survive the predicate, so
    // shards owning the lower rows prune everything they'd otherwise fetch.
    assert!(report.pruned() > 0, "{report:?}");
    // The report serializes and renders.
    let json = report.to_json().to_string_compact();
    assert!(Json::parse(&json).is_ok());
    for key in ["\"shards\"", "\"fetched\"", "\"pruned\"", "\"epoch\""] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
    assert!(report.render().contains("shard 0"));

    // ANALYZE attaches measured merged counters.
    let ClusterStatement::Explain(report) = coord
        .execute("EXPLAIN ANALYZE SELECT count_cells(cube) FROM cube WHERE cube > 900")
        .unwrap()
    else {
        panic!("expected explain");
    };
    let (stats, elapsed_ns) = report.analyze.expect("analyze info");
    assert_eq!(report.condenser, Some("count_cells"));
    assert!(elapsed_ns > 0);
    assert_eq!(
        stats.tiles_read + stats.tiles_pruned,
        report.fetched() + report.pruned()
    );

    // Induced expressions have no tile plan, exactly like a single engine.
    assert!(coord.execute("EXPLAIN SELECT cube + 1 FROM cube").is_err());
}

#[test]
fn semantic_errors_match_single_engine() {
    let coord = cluster(2);
    for bad in [
        "SELECT other FROM cube",
        "SELECT cube[0:1] FROM cube",
        "SELECT cube[1,2,3] FROM cube",
        "SELECT sum_cells(sum_cells(cube)) FROM cube",
        "SELECT cube[5:1,*,*] FROM cube",
        "SELECT cube FROM cube WHERE other > 1",
        "SELECT nope FROM nope",
    ] {
        assert!(coord.execute(bad).is_err(), "{bad:?} should fail");
    }
}

#[test]
fn statement_rewrite_round_trips_through_the_parser() {
    // The coordinator ships rewritten statements as surface syntax; every
    // corpus statement must survive parse → display → parse.
    for q in GOLDEN {
        let stmt = parse_statement(q).unwrap();
        let printed = stmt.to_string();
        let again = parse_statement(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(stmt, again, "{q}");
        if let Statement::Query(query) = stmt {
            assert_eq!(parse(&query.to_string()).unwrap(), query, "{q}");
        }
    }
}

#[test]
fn cluster_info_and_status_merge_shard_views() {
    let coord = cluster(4);
    let info = coord.info("cube").unwrap();
    assert_eq!(
        info.get("current_domain").and_then(Json::as_str),
        Some("[0:9,0:9,0:9]")
    );
    assert_eq!(info.get("covered_cells").and_then(Json::as_u64), Some(1000));
    let status = coord.status();
    assert_eq!(status.get("shards").and_then(Json::as_u64), Some(4));
    let members = status.get("members").and_then(Json::as_array).unwrap();
    assert_eq!(members.len(), 4);
    assert!(members
        .iter()
        .all(|m| m.get("healthy").and_then(Json::as_bool) == Some(true)));
    assert_eq!(coord.object_names().unwrap(), vec!["cube".to_string()]);
}

#[test]
fn cluster_retile_preserves_answers() {
    let single = single_engine();
    let coord = cluster(4);
    let w = coord.retile("cube", "aligned:[*,*,1]:4").unwrap();
    assert_eq!(w.per_shard.len(), 4);
    assert!(w.merged().tiles_after > 0);
    for q in GOLDEN {
        let want = tilestore_rasql::execute(&single.begin_read(), q).unwrap().0;
        let ClusterStatement::Value(got) = coord.execute(q).unwrap() else {
            panic!("{q}: unexpected explain");
        };
        assert_same(&format!("{q} (retiled)"), &want, &got.value);
    }
}

#[test]
fn cluster_defrag_preserves_answers_on_every_shard() {
    // Defrag flows through the shared retile grammar: each owning shard
    // compacts its own page file, empty tail shards are skipped, and the
    // whole corpus still answers byte-identically. A budget-paced pass
    // afterwards converges immediately and changes nothing either.
    let single = single_engine();
    let coord = cluster(4);
    let w = coord.retile("cube", "--defrag").unwrap();
    assert_eq!(
        w.per_shard.len(),
        4,
        "every data-owning shard reports a defrag"
    );
    for q in GOLDEN {
        let want = tilestore_rasql::execute(&single.begin_read(), q).unwrap().0;
        let ClusterStatement::Value(got) = coord.execute(q).unwrap() else {
            panic!("{q}: unexpected explain");
        };
        assert_same(&format!("{q} (defragged)"), &want, &got.value);
    }
    let w = coord.retile("cube", "--defrag:1").unwrap();
    assert_eq!(w.per_shard.len(), 4);
    for q in GOLDEN {
        let want = tilestore_rasql::execute(&single.begin_read(), q).unwrap().0;
        let ClusterStatement::Value(got) = coord.execute(q).unwrap() else {
            panic!("{q}: unexpected explain");
        };
        assert_same(&format!("{q} (paced defrag)"), &want, &got.value);
    }
}

#[test]
fn cluster_from_log_is_a_typed_unsupported_error() {
    let coord = cluster(2);
    let e = match coord.retile("cube", "--from-log") {
        Ok(_) => panic!("--from-log must be rejected in cluster mode"),
        Err(e) => e,
    };
    assert!(
        matches!(e, tilestore_cluster::ClusterError::Unsupported { .. }),
        "{e}"
    );
    assert!(e.to_string().contains("unsupported in cluster mode"), "{e}");
    // The cluster still answers after the rejected verb.
    let ClusterStatement::Value(v) = coord.execute("SELECT max_cells(cube) FROM cube").unwrap()
    else {
        panic!("unexpected explain");
    };
    assert_eq!(v.value, Value::Number(999.0));
}
