//! Property test: for randomized domains, tilings, shard maps, and rasql
//! statements, a cluster of 1/2/4/8 local shards answers byte-identically
//! to a single engine holding the same cells — including seam-straddling
//! regions, degenerate one-slab shards, and shards that own no data.

use std::sync::Arc;

use tilestore_cluster::{ClusterStatement, Coordinator, ShardBackend, ShardMap};
use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_exec::ThreadPool;
use tilestore_geometry::{AxisRange, DefDomain, Domain};
use tilestore_rasql::Value;
use tilestore_testkit::Rng;
use tilestore_tiling::{AlignedTiling, Scheme, SingleTile};

const ITERATIONS: u64 = 24;
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

fn random_domain(rng: &mut Rng, dim: usize) -> Domain {
    let ranges = (0..dim)
        .map(|_| {
            let lo = rng.gen_range(-6i64..7);
            let extent = rng.gen_range(1i64..11);
            AxisRange::new(lo, lo + extent - 1).unwrap()
        })
        .collect();
    Domain::new(ranges).unwrap()
}

fn random_scheme(rng: &mut Rng, dim: usize) -> Scheme {
    if rng.gen_bool(0.25) {
        Scheme::SingleTile(SingleTile)
    } else {
        let budget = [64u64, 256, 1024, 8192][rng.gen_range(0usize..4)];
        Scheme::Aligned(AlignedTiling::regular(dim, budget))
    }
}

/// Random strictly-increasing cuts near (and sometimes beyond) the hull,
/// so some slabs are one cell wide and some shards own nothing.
fn random_map(rng: &mut Rng, dim: usize, hull: &Domain, shards: usize) -> ShardMap {
    if shards == 1 {
        return ShardMap::new(0, vec![]).unwrap();
    }
    let axis = rng.gen_range(0usize..dim);
    let r = &hull.ranges()[axis];
    let mut cuts: Vec<i64> = (0..shards - 1)
        .map(|_| rng.gen_range(r.lo() - 1..r.hi() + 3))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    // Deduping may shrink the list; pad upward past the hull (empty shards).
    let mut next = cuts.last().copied().unwrap_or(r.hi() + 2) + 1;
    while cuts.len() < shards - 1 {
        cuts.push(next);
        next += 1;
    }
    ShardMap::new(axis, cuts).unwrap()
}

fn random_region(rng: &mut Rng, hull: &Domain) -> Domain {
    let ranges = hull
        .ranges()
        .iter()
        .map(|r| {
            let lo = rng.gen_range(r.lo()..r.hi() + 1);
            let hi = rng.gen_range(lo..r.hi() + 1);
            AxisRange::new(lo, hi).unwrap()
        })
        .collect();
    Domain::new(ranges).unwrap()
}

fn subscript(region: &Domain) -> String {
    let parts: Vec<String> = region
        .ranges()
        .iter()
        .map(|r| format!("{}:{}", r.lo(), r.hi()))
        .collect();
    format!("[{}]", parts.join(", "))
}

fn random_statement(rng: &mut Rng, hull: &Domain) -> String {
    let region = random_region(rng, hull);
    let sub = subscript(&region);
    let core = match rng.gen_range(0u32..5) {
        0 => "SELECT a FROM a".to_string(),
        1 => format!("SELECT a{sub} FROM a"),
        2 => {
            let agg =
                ["sum_cells", "avg_cells", "max_cells", "min_cells"][rng.gen_range(0usize..4)];
            format!("SELECT {agg}(a{sub}) FROM a")
        }
        3 => {
            let agg = ["count_cells", "some_cells", "all_cells"][rng.gen_range(0usize..3)];
            let k = rng.gen_range(0u32..1000);
            format!("SELECT {agg}(a{sub} > {k}) FROM a")
        }
        _ => {
            let k = rng.gen_range(1u32..100);
            match rng.gen_range(0u32..3) {
                0 => format!("SELECT a{sub} + {k} FROM a"),
                1 => format!("SELECT a{sub} * 2 - {k} FROM a"),
                _ => format!("SELECT a{sub} >= {k} FROM a"),
            }
        }
    };
    if rng.gen_bool(0.4) {
        let op = [">", ">=", "<", "<=", "!=", "="][rng.gen_range(0usize..6)];
        let k = rng.gen_range(0u32..1000);
        format!("{core} WHERE a {op} {k}")
    } else {
        core
    }
}

fn assert_same(ctx: &str, want: &Value, got: &Value) {
    match (want, got) {
        (Value::Array(a), Value::Array(b)) => {
            assert_eq!(a.domain(), b.domain(), "{ctx}: domain");
            assert_eq!(a.bytes(), b.bytes(), "{ctx}: bytes");
        }
        (Value::Number(n), Value::Number(m)) => {
            assert_eq!(n.to_bits(), m.to_bits(), "{ctx}: number");
        }
        (Value::Count(c), Value::Count(d)) => assert_eq!(c, d, "{ctx}: count"),
        (Value::Bool(b), Value::Bool(c)) => assert_eq!(b, c, "{ctx}: bool"),
        (want, got) => panic!("{ctx}: kind mismatch: {want:?} vs {got:?}"),
    }
}

#[test]
fn randomized_cluster_queries_match_single_engine() {
    for iter in 0..ITERATIONS {
        let mut rng = Rng::seed_from_u64(0xC0FF_EE00 ^ iter);
        let dim = rng.gen_range(1usize..4);
        let mdd = MddType::new(CellType::of::<u32>(), DefDomain::unlimited(dim).unwrap());
        let scheme = random_scheme(&mut rng, dim);

        // One or two inserts; two disjoint inserts leave a default-valued gap
        // in the hull, which on some maps becomes a shard with no data at all
        // (the coordinator's locally-computed default piece).
        let first = random_domain(&mut rng, dim);
        let mut arrays = vec![Array::from_fn(first.clone(), |p| {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ iter;
            for &x in p.coords() {
                h = (h ^ x as u64).wrapping_mul(0x1000_0000_01b3);
            }
            (h % 1000) as u32
        })
        .unwrap()];
        if rng.gen_bool(0.5) {
            let shifted: Vec<AxisRange> = first
                .ranges()
                .iter()
                .map(|r| {
                    let off = r.extent() as i64 + rng.gen_range(1i64..4);
                    AxisRange::new(r.lo() + off, r.hi() + off).unwrap()
                })
                .collect();
            let second = Domain::new(shifted).unwrap();
            arrays.push(
                Array::from_fn(second, |p| {
                    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ iter;
                    for &x in p.coords() {
                        h = (h ^ x as u64).wrapping_mul(0x1000_0000_01b3);
                    }
                    (h % 1000) as u32
                })
                .unwrap(),
            );
        }

        let single = Database::in_memory().unwrap();
        single
            .create_object("a", mdd.clone(), scheme.clone())
            .unwrap();
        let mut hull = arrays[0].domain().clone();
        for a in &arrays {
            single.insert("a", a).unwrap();
            hull = hull.hull(a.domain()).unwrap();
        }

        let statements: Vec<String> = (0..6).map(|_| random_statement(&mut rng, &hull)).collect();
        let wants: Vec<Value> = statements
            .iter()
            .map(|q| {
                tilestore_rasql::execute(&single.begin_read(), q)
                    .unwrap_or_else(|e| panic!("iter {iter}: {q}: single: {e}"))
                    .0
            })
            .collect();

        let pool = Arc::new(ThreadPool::new(2));
        for &shards in SHARD_COUNTS {
            let map = random_map(&mut rng, dim, &hull, shards);
            let backends = (0..shards)
                .map(|_| ShardBackend::Local(SharedDatabase::new(Database::in_memory().unwrap())))
                .collect();
            let coord = Coordinator::new(map, backends, Arc::clone(&pool)).unwrap();
            coord
                .create_object("a", mdd.clone(), scheme.clone())
                .unwrap();
            for a in &arrays {
                coord.insert("a", a).unwrap();
            }
            for (q, want) in statements.iter().zip(&wants) {
                let ctx = format!("iter {iter}, {shards} shards: {q}");
                let got = match coord.execute(q).unwrap_or_else(|e| panic!("{ctx}: {e}")) {
                    ClusterStatement::Value(v) => v,
                    ClusterStatement::Explain(_) => panic!("{ctx}: unexpected explain"),
                };
                assert_same(&ctx, want, &got.value);
                assert_eq!(got.epochs.len(), shards, "{ctx}: epochs");
            }
        }
    }
}
