//! A zero-dependency thread-pool executor with scoped fork-join.
//!
//! The engine's hot path — fetch, decode and clip the tiles a range query
//! intersects — is embarrassingly parallel once the index has produced the
//! tile set, and so are the per-tile materialization loops of `insert` and
//! `retile`. This crate provides the substrate: a fixed pool of worker
//! threads (std only: threads, mutexes, condvars) plus a scoped
//! scatter/gather API in the style of `std::thread::scope`, so tasks may
//! borrow from the caller's stack.
//!
//! Two deadlock-avoidance properties matter because the same pool serves
//! both the server's request handlers and the engine's nested tile
//! scatters:
//!
//! - **Caller participation**: a thread waiting on its own scope executes
//!   that scope's queued tasks instead of sleeping, so a scatter completes
//!   even when every pool worker is occupied (including on a pool of one
//!   worker, or when a worker itself opens a nested scope).
//! - **Scope-local queues**: pool workers pick up *tickets* pointing at a
//!   scope's private queue; a waiting caller only ever runs its own scope's
//!   tasks, never an unrelated request's.
//!
//! Pool gauges (`exec.queue_depth`, `exec.busy_workers`, `exec.tasks`) and
//! per-task spans flow into `tilestore-obs`.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use tilestore_obs::{Counter, Gauge};

/// Locks a mutex, recovering from poisoning: an executor must keep working
/// after a task panicked while a lock was held.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A task with its lifetime erased. Safety: only [`Scope::spawn`] creates
/// these, and the owning scope joins every task before the borrowed data
/// can expire.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Work items on the pool's global queue.
enum Job {
    /// Run one task of the referenced scope (no-op if the scope's caller
    /// already ran it while waiting).
    Ticket(Arc<ScopeShared>),
    /// A free-standing `'static` job ([`ThreadPool::execute`]).
    Exec(Task),
}

/// State shared between a scope handle, the pool workers holding its
/// tickets, and the waiting caller.
struct ScopeShared {
    state: Mutex<ScopeState>,
    done: Condvar,
    panicked: AtomicBool,
}

struct ScopeState {
    queue: VecDeque<Task>,
    /// Tasks spawned but not yet finished (queued or running).
    pending: usize,
}

impl ScopeShared {
    fn new() -> Self {
        ScopeShared {
            state: Mutex::new(ScopeState {
                queue: VecDeque::new(),
                pending: 0,
            }),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    /// Pops and runs one queued task. Returns false when the queue was
    /// empty (tasks may still be running elsewhere).
    fn run_one(&self) -> bool {
        let task = lock(&self.state).queue.pop_front();
        let Some(task) = task else { return false };
        let _span = tilestore_obs::tracer().span_with("exec_task", String::new);
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            self.panicked.store(true, Ordering::Release);
        }
        let mut st = lock(&self.state);
        st.pending -= 1;
        if st.pending == 0 {
            self.done.notify_all();
        }
        true
    }

    /// Runs this scope's remaining queued tasks on the calling thread, then
    /// blocks until every spawned task has finished.
    fn join(&self) {
        loop {
            if self.run_one() {
                continue;
            }
            let mut st = lock(&self.state);
            loop {
                if st.pending == 0 {
                    return;
                }
                if !st.queue.is_empty() {
                    break; // help with the newly spawned work
                }
                st = self.done.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    workers: usize,
    /// True on a single-core machine: scope tickets are not worth a worker
    /// wakeup there, because the joining caller drains the scope queue
    /// itself and every wakeup is a context switch off that caller.
    solo_core: bool,
    queue_depth: Arc<Gauge>,
    busy_workers: Arc<Gauge>,
    tasks: Arc<Counter>,
}

impl PoolInner {
    fn inject(&self, job: Job) {
        let mut q = lock(&self.queue);
        q.push_back(job);
        self.queue_depth.set(q.len() as i64);
        drop(q);
        self.available.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(job) = q.pop_front() {
                        self.queue_depth.set(q.len() as i64);
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self
                        .available
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            self.busy_workers.add(1);
            self.tasks.inc();
            match job {
                Job::Ticket(scope) => {
                    scope.run_one();
                }
                Job::Exec(task) => {
                    let _span = tilestore_obs::tracer().span_with("exec_job", String::new);
                    // A panicking job must not take the worker down with it.
                    let _ = catch_unwind(AssertUnwindSafe(task));
                }
            }
            self.busy_workers.add(-1);
        }
    }
}

/// A fixed pool of worker threads with scoped fork-join scatter/gather.
///
/// ```
/// let pool = tilestore_exec::ThreadPool::new(2);
/// let items = vec![1u64, 2, 3, 4];
/// let doubled = pool.scatter(items, |_, x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8]);
/// ```
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ThreadPool {
    /// A pool with `workers` threads (clamped to at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let reg = tilestore_obs::metrics();
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers,
            solo_core: std::thread::available_parallelism().is_ok_and(|n| n.get() == 1),
            queue_depth: reg.gauge("exec.queue_depth"),
            busy_workers: reg.gauge("exec.busy_workers"),
            tasks: reg.counter("exec.tasks"),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tilestore-exec-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// A pool sized to the machine's available parallelism.
    #[must_use]
    pub fn with_default_workers() -> Self {
        let n = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ThreadPool::new(n)
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Runs a free-standing `'static` job on the pool (fire-and-forget).
    /// Panics in the job are swallowed; use [`ThreadPool::scope`] when the
    /// caller needs completion or panic propagation.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.inner.inject(Job::Exec(Box::new(job)));
    }

    /// Opens a fork-join scope: tasks spawned inside may borrow data that
    /// outlives the `scope` call, and all of them are guaranteed to have
    /// finished when `scope` returns — even if `f` or a task panics.
    ///
    /// The calling thread participates: while waiting it executes its own
    /// scope's queued tasks, so progress does not depend on free workers.
    ///
    /// # Panics
    /// Re-raises a panic of `f`; panics if any spawned task panicked.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let shared = Arc::new(ScopeShared::new());
        let scope = Scope {
            pool: self,
            shared: Arc::clone(&shared),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The join below is the soundness anchor for the lifetime erasure in
        // `spawn`: it runs on every exit path, so no task outlives `'env`.
        shared.join();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                assert!(
                    !shared.panicked.load(Ordering::Acquire),
                    "a task spawned in a ThreadPool scope panicked"
                );
                value
            }
        }
    }

    /// Scatter/gather: runs `f(index, item)` for every item on the pool
    /// (the caller participating) and returns the results in input order.
    ///
    /// # Panics
    /// Propagates task panics, like [`ThreadPool::scope`].
    pub fn scatter<'env, T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'env,
        R: Send + 'env,
        F: Fn(usize, T) -> R + Sync + 'env,
    {
        let n = items.len();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let f = &f;
        self.scope(|scope| {
            for ((i, item), slot) in items.into_iter().enumerate().zip(results.iter_mut()) {
                scope.spawn(move || *slot = Some(f(i, item)));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("scope joined every task"))
            .collect()
    }

    /// Splits `items` into at most `chunks` contiguous runs, preserving
    /// order — the usual granularity for [`ThreadPool::scatter`] when the
    /// per-item work is small.
    #[must_use]
    pub fn chunk<T>(items: Vec<T>, chunks: usize) -> Vec<Vec<T>> {
        let chunks = chunks.max(1).min(items.len().max(1));
        let per = items.len().div_ceil(chunks);
        let mut out: Vec<Vec<T>> = Vec::with_capacity(chunks);
        let mut run = Vec::with_capacity(per);
        for item in items {
            run.push(item);
            if run.len() == per {
                out.push(std::mem::take(&mut run));
            }
        }
        if !run.is_empty() {
            out.push(run);
        }
        out
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Handle for spawning tasks inside a [`ThreadPool::scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    shared: Arc<ScopeShared>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the pool. The task may borrow anything that
    /// outlives the enclosing [`ThreadPool::scope`] call.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `ThreadPool::scope` joins every spawned task before it
        // returns, on panic paths included, so the closure and its borrows
        // never outlive `'env`. The transmute only erases that lifetime.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        {
            let mut st = lock(&self.shared.state);
            st.pending += 1;
            st.queue.push_back(task);
        }
        // On a single core a worker can only run this task by preempting
        // the caller, who will drain the scope queue in `join` anyway —
        // skip the ticket and save the wakeup churn. Progress never
        // depends on tickets: `join` runs every queued task itself.
        if !self.pool.inner.solo_core {
            self.pool
                .inner
                .inject(Job::Ticket(Arc::clone(&self.shared)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scatter_preserves_order_and_borrows() {
        let pool = ThreadPool::new(4);
        let base = vec![10u64, 20, 30, 40, 50];
        let base_ref = &base;
        let out = pool.scatter((0..5).collect(), |i, x: usize| base_ref[x] + i as u64);
        assert_eq!(out, vec![10, 21, 32, 43, 54]);
    }

    #[test]
    fn scope_tasks_mutate_disjoint_borrows() {
        let pool = ThreadPool::new(2);
        let mut data = vec![0u64; 64];
        let (left, right) = data.split_at_mut(32);
        pool.scope(|scope| {
            scope.spawn(|| left.iter_mut().for_each(|v| *v = 1));
            scope.spawn(|| right.iter_mut().for_each(|v| *v = 2));
        });
        assert!(data[..32].iter().all(|&v| v == 1));
        assert!(data[32..].iter().all(|&v| v == 2));
    }

    #[test]
    fn single_worker_pool_cannot_deadlock_on_nested_scopes() {
        // The caller participates in its own scope, so even a pool of one
        // worker completes a scatter issued from inside a pool job that
        // itself occupies the only worker.
        let pool = Arc::new(ThreadPool::new(1));
        let total = Arc::new(AtomicU64::new(0));
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..4 {
            let pool2 = Arc::clone(&pool);
            let total2 = Arc::clone(&total);
            let tx = tx.clone();
            pool.execute(move || {
                let parts = pool2.scatter(vec![1u64, 2, 3], |_, x| x * 2);
                total2.fetch_add(parts.iter().sum::<u64>(), Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..4 {
            rx.recv_timeout(std::time::Duration::from_secs(30))
                .expect("nested scatter deadlocked");
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 12);
    }

    #[test]
    fn task_panic_propagates_after_join() {
        let pool = ThreadPool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let finished2 = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("boom"));
                scope.spawn(move || {
                    finished2.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err());
        // The sibling task still ran to completion before the panic surfaced.
        assert_eq!(finished.load(Ordering::Relaxed), 1);
        // The pool survives a poisoned scope and keeps executing.
        assert_eq!(pool.scatter(vec![5u64], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn chunking_covers_all_items_in_order() {
        let chunks = ThreadPool::chunk((0..10).collect::<Vec<u32>>(), 3);
        assert!(chunks.len() <= 3);
        let flat: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<u32>>());
        assert!(ThreadPool::chunk(Vec::<u32>::new(), 4).is_empty());
        assert_eq!(ThreadPool::chunk(vec![1], 8), vec![vec![1]]);
    }

    #[test]
    fn execute_runs_static_jobs() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..8u64 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        let mut got: Vec<u64> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.workers(), 3);
        drop(pool); // must not hang
    }
}
