//! Error type for geometric operations.

use std::fmt;

/// Errors raised by geometric constructions and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A domain or point was constructed with zero axes.
    ZeroDimensional,
    /// Two objects that must share a dimensionality do not.
    DimensionMismatch {
        /// Dimensionality of the left-hand object.
        left: usize,
        /// Dimensionality of the right-hand object.
        right: usize,
    },
    /// An axis range was given with `lo > hi`.
    EmptyAxis {
        /// Axis index.
        axis: usize,
        /// Lower bound supplied.
        lo: i64,
        /// Upper bound supplied.
        hi: i64,
    },
    /// A point lies outside the domain it was used against.
    PointOutOfDomain,
    /// A sub-domain is not contained in its enclosing domain.
    NotContained,
    /// The number of cells overflows `u64`.
    CellCountOverflow,
    /// A textual domain/point representation could not be parsed.
    Parse(String),
    /// An axis index was out of range for the dimensionality.
    AxisOutOfRange {
        /// Offending axis index.
        axis: usize,
        /// Dimensionality of the object.
        dim: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroDimensional => {
                write!(f, "domains and points must have at least one axis")
            }
            GeometryError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeometryError::EmptyAxis { axis, lo, hi } => {
                write!(f, "empty range on axis {axis}: [{lo}:{hi}]")
            }
            GeometryError::PointOutOfDomain => write!(f, "point lies outside the domain"),
            GeometryError::NotContained => {
                write!(f, "sub-domain is not contained in the enclosing domain")
            }
            GeometryError::CellCountOverflow => write!(f, "cell count overflows u64"),
            GeometryError::Parse(s) => write!(f, "parse error: {s}"),
            GeometryError::AxisOutOfRange { axis, dim } => {
                write!(f, "axis {axis} out of range for dimensionality {dim}")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Convenience result alias for geometry operations.
pub type Result<T> = std::result::Result<T, GeometryError>;
