//! Geometric foundation for arbitrary multidimensional tiling.
//!
//! This crate implements the multidimensional-discrete-data (MDD) model of
//! §3 of *Furtado & Baumann, "Storage of Multidimensional Arrays Based on
//! Arbitrary Tiling" (ICDE 1999)*:
//!
//! * [`Point`] — points of the discrete coordinate space `Z^d`, with the
//!   paper's row-major total order;
//! * [`Domain`] — bounded d-dimensional intervals (spatial domains of MDD
//!   objects, tiles and query regions), with intersection, closure
//!   ([`Domain::hull`]) and containment algebra;
//! * [`DefDomain`] — definition domains with unlimited (`*`) bounds;
//! * [`RowMajor`] — cell linearization for storage on linear media;
//! * [`PointIter`] / [`RunIter`] — cell- and run-granular iteration, with
//!   [`copy_region`] / [`fill_region`] as the bulk data-movement primitives
//!   behind query post-processing;
//! * [`GridIter`] — regular grid decomposition (the substrate of aligned
//!   tiling);
//! * [`difference`] / [`uncovered`] — disjoint box decomposition of domain
//!   differences (partial tile coverage support);
//! * [`morton_key`] / [`sort_by_zorder`] — Z-order linearization for
//!   spatially-local tile ordering (related work \[11\]).

#![warn(missing_docs)]
#![warn(clippy::all)]

mod def_domain;
mod difference;
mod domain;
mod error;
mod grid;
mod iter;
mod order;
mod point;
mod zorder;

pub use def_domain::{DefAxis, DefDomain};
pub use difference::{difference, uncovered};
pub use domain::{AxisRange, Domain};
pub use error::{GeometryError, Result};
pub use grid::GridIter;
pub use iter::{copy_region, fill_region, PointIter, Run, RunIter};
pub use order::RowMajor;
pub use point::Point;
pub use zorder::{morton_centroid_key, morton_key, sort_by_centroid_zorder, sort_by_zorder};
