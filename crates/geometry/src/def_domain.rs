//! Definition domains with possibly unlimited bounds (`*` in the paper).

use std::fmt;
use std::str::FromStr;

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::domain::Domain;
use crate::error::{GeometryError, Result};

/// One axis of a definition domain: each bound is either a fixed coordinate
/// or unlimited (`*`), as in `[m.l_1:m.u_1, ..., m.l_k:m.*, ...]` (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefAxis {
    /// Lower bound; `None` means unlimited below.
    pub lo: Option<i64>,
    /// Upper bound; `None` means unlimited above.
    pub hi: Option<i64>,
}

impl DefAxis {
    /// A fully bounded axis `[lo:hi]`.
    ///
    /// # Errors
    /// [`GeometryError::EmptyAxis`] if `lo > hi`.
    pub fn bounded(lo: i64, hi: i64) -> Result<Self> {
        if lo > hi {
            return Err(GeometryError::EmptyAxis { axis: 0, lo, hi });
        }
        Ok(DefAxis {
            lo: Some(lo),
            hi: Some(hi),
        })
    }

    /// An axis unlimited in both directions `[*:*]`.
    #[must_use]
    pub fn unlimited() -> Self {
        DefAxis { lo: None, hi: None }
    }

    /// `[lo:*]` — bounded below, unlimited above (gradual growth upward).
    #[must_use]
    pub fn from_lo(lo: i64) -> Self {
        DefAxis {
            lo: Some(lo),
            hi: None,
        }
    }

    /// `[*:hi]` — unlimited below, bounded above.
    #[must_use]
    pub fn to_hi(hi: i64) -> Self {
        DefAxis {
            lo: None,
            hi: Some(hi),
        }
    }

    /// Whether a concrete coordinate satisfies the axis bounds.
    #[must_use]
    pub fn admits(&self, x: i64) -> bool {
        self.lo.is_none_or(|l| l <= x) && self.hi.is_none_or(|h| x <= h)
    }
}

/// The definition domain of an MDD type (§3): a d-dimensional interval whose
/// bounds may be unlimited. It is a *type-level* property — instances carry a
/// concrete, bounded *current domain* that must always lie inside it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DefDomain(Vec<DefAxis>);

impl DefDomain {
    /// Creates a definition domain from per-axis bounds.
    ///
    /// # Errors
    /// [`GeometryError::ZeroDimensional`] for an empty list.
    pub fn new(axes: Vec<DefAxis>) -> Result<Self> {
        if axes.is_empty() {
            return Err(GeometryError::ZeroDimensional);
        }
        Ok(DefDomain(axes))
    }

    /// A fully unlimited definition domain of dimensionality `dim`.
    ///
    /// # Errors
    /// [`GeometryError::ZeroDimensional`] when `dim == 0`.
    pub fn unlimited(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(GeometryError::ZeroDimensional);
        }
        Ok(DefDomain(vec![DefAxis::unlimited(); dim]))
    }

    /// The definition domain exactly equal to a bounded domain.
    #[must_use]
    pub fn from_domain(domain: &Domain) -> Self {
        DefDomain(
            domain
                .ranges()
                .iter()
                .map(|r| DefAxis {
                    lo: Some(r.lo()),
                    hi: Some(r.hi()),
                })
                .collect(),
        )
    }

    /// Dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Per-axis bounds.
    #[must_use]
    pub fn axes(&self) -> &[DefAxis] {
        &self.0
    }

    /// Whether a concrete domain (e.g. a current domain, a tile, a query
    /// region) lies inside the definition domain.
    #[must_use]
    pub fn admits(&self, domain: &Domain) -> bool {
        domain.dim() == self.dim()
            && self
                .0
                .iter()
                .zip(domain.ranges())
                .all(|(a, r)| a.admits(r.lo()) && a.admits(r.hi()))
    }

    /// The bounded domain equal to this definition domain, if every bound is
    /// limited; `None` when any bound is `*`.
    #[must_use]
    pub fn as_bounded(&self) -> Option<Domain> {
        let bounds: Option<Vec<(i64, i64)>> = self.0.iter().map(|a| Some((a.lo?, a.hi?))).collect();
        Domain::from_bounds(&bounds?).ok()
    }
}

impl fmt::Display for DefDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match a.lo {
                Some(l) => write!(f, "{l}")?,
                None => write!(f, "*")?,
            }
            write!(f, ":")?;
            match a.hi {
                Some(h) => write!(f, "{h}")?,
                None => write!(f, "*")?,
            }
        }
        write!(f, "]")
    }
}

impl FromStr for DefDomain {
    type Err = GeometryError;

    /// Parses the paper notation with `*` for unlimited bounds, e.g.
    /// `"[0:*,*:*,0:99]"`.
    fn from_str(s: &str) -> Result<Self> {
        let s = s.trim();
        let inner = s
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| GeometryError::Parse(format!("domain must be bracketed: {s:?}")))?;
        let mut axes = Vec::new();
        for (axis, part) in inner.split(',').enumerate() {
            let (lo, hi) = part.split_once(':').ok_or_else(|| {
                GeometryError::Parse(format!("axis {axis}: missing ':' in {part:?}"))
            })?;
            let parse_bound = |text: &str| -> Result<Option<i64>> {
                let text = text.trim();
                if text == "*" {
                    Ok(None)
                } else {
                    text.parse::<i64>().map(Some).map_err(|e| {
                        GeometryError::Parse(format!("axis {axis}: bad bound {text:?}: {e}"))
                    })
                }
            };
            let (lo, hi) = (parse_bound(lo)?, parse_bound(hi)?);
            if let (Some(l), Some(h)) = (lo, hi) {
                if l > h {
                    return Err(GeometryError::EmptyAxis { axis, lo: l, hi: h });
                }
            }
            axes.push(DefAxis { lo, hi });
        }
        DefDomain::new(axes)
    }
}

impl ToJson for DefDomain {
    /// Serializes in the paper notation with `*` for unlimited bounds, e.g.
    /// `"[0:*,*:*]"`.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for DefDomain {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| JsonError::msg("expected definition-domain string"))?;
        s.parse().map_err(|e| JsonError::msg(format!("{e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        let dd: DefDomain = "[0:*,*:*,0:99]".parse().unwrap();
        assert_eq!(dd.to_string(), "[0:*,*:*,0:99]");
        assert_eq!(dd.dim(), 3);
        assert!("[5:1]".parse::<DefDomain>().is_err());
        assert!("[*:*".parse::<DefDomain>().is_err());
    }

    #[test]
    fn admits_checks_every_bounded_side() {
        let dd: DefDomain = "[0:*,*:*,0:99]".parse().unwrap();
        let ok: Domain = "[0:1000,-50:50,0:99]".parse().unwrap();
        assert!(dd.admits(&ok));
        let below: Domain = "[-1:10,0:0,0:99]".parse().unwrap();
        assert!(!dd.admits(&below));
        let above: Domain = "[0:10,0:0,0:100]".parse().unwrap();
        assert!(!dd.admits(&above));
        let wrong_dim: Domain = "[0:10]".parse().unwrap();
        assert!(!dd.admits(&wrong_dim));
    }

    #[test]
    fn as_bounded_requires_all_limits() {
        let dd: DefDomain = "[0:9,1:5]".parse().unwrap();
        assert_eq!(dd.as_bounded().unwrap(), "[0:9,1:5]".parse().unwrap());
        let open: DefDomain = "[0:*]".parse().unwrap();
        assert!(open.as_bounded().is_none());
    }

    #[test]
    fn constructors() {
        assert!(DefDomain::unlimited(0).is_err());
        let dd = DefDomain::unlimited(2).unwrap();
        assert!(dd.admits(&"[-100:100,-100:100]".parse().unwrap()));
        let dom: Domain = "[3:7,1:2]".parse().unwrap();
        let dd = DefDomain::from_domain(&dom);
        assert!(dd.admits(&dom));
        assert!(!dd.admits(&"[2:7,1:2]".parse().unwrap()));
        assert!(DefAxis::from_lo(0).admits(5));
        assert!(!DefAxis::from_lo(0).admits(-1));
        assert!(DefAxis::to_hi(9).admits(-100));
        assert!(!DefAxis::to_hi(9).admits(10));
        assert!(DefAxis::bounded(3, 2).is_err());
    }
}
