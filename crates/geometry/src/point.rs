//! d-dimensional integer points.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;
use std::str::FromStr;

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{GeometryError, Result};

/// A point in the d-dimensional discrete coordinate space `Z^d`.
///
/// The paper (§3) assumes coordinate sets have been mapped to subintervals of
/// `Z^d` by higher DBMS layers, so a point is simply a tuple of `i64`
/// coordinates. Points are totally ordered by the row-major ("lower than")
/// relation of §3, which [`Ord`] implements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Point(Vec<i64>);

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Errors
    /// Returns [`GeometryError::ZeroDimensional`] for an empty coordinate list.
    pub fn new(coords: Vec<i64>) -> Result<Self> {
        if coords.is_empty() {
            return Err(GeometryError::ZeroDimensional);
        }
        Ok(Point(coords))
    }

    /// Creates a point without validating; panics on zero dimensions.
    ///
    /// Convenient in tests and literals: `Point::from_slice(&[1, 2, 3])`.
    #[must_use]
    pub fn from_slice(coords: &[i64]) -> Self {
        Point::new(coords.to_vec()).expect("point must have at least one coordinate")
    }

    /// The origin (all-zero point) of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn origin(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional point");
        Point(vec![0; dim])
    }

    /// Dimensionality of the point.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinates as a slice.
    #[must_use]
    pub fn coords(&self) -> &[i64] {
        &self.0
    }

    /// Mutable access to the coordinates.
    pub fn coords_mut(&mut self) -> &mut [i64] {
        &mut self.0
    }

    /// Component-wise addition.
    ///
    /// # Errors
    /// Returns [`GeometryError::DimensionMismatch`] when dimensionalities differ.
    pub fn add(&self, other: &Point) -> Result<Point> {
        self.check_dim(other)?;
        Ok(Point(
            self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect(),
        ))
    }

    /// Component-wise subtraction.
    ///
    /// # Errors
    /// Returns [`GeometryError::DimensionMismatch`] when dimensionalities differ.
    pub fn sub(&self, other: &Point) -> Result<Point> {
        self.check_dim(other)?;
        Ok(Point(
            self.0.iter().zip(&other.0).map(|(a, b)| a - b).collect(),
        ))
    }

    /// Chebyshev (L∞) distance between two points.
    ///
    /// # Errors
    /// Returns [`GeometryError::DimensionMismatch`] when dimensionalities differ.
    pub fn linf_distance(&self, other: &Point) -> Result<u64> {
        self.check_dim(other)?;
        Ok(self
            .0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| a.abs_diff(*b))
            .max()
            .unwrap_or(0))
    }

    fn check_dim(&self, other: &Point) -> Result<()> {
        if self.dim() != other.dim() {
            return Err(GeometryError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(())
    }
}

impl Index<usize> for Point {
    type Output = i64;

    fn index(&self, axis: usize) -> &i64 {
        &self.0[axis]
    }
}

impl PartialOrd for Point {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Point {
    /// Row-major ("lower than") total order of §3: compare coordinates from
    /// the first (slowest-varying) axis to the last.
    ///
    /// Points of different dimensionality compare by dimensionality first so
    /// that `Ord`'s totality is preserved; mixing dimensionalities in ordered
    /// collections is a caller bug, not UB.
    fn cmp(&self, other: &Self) -> Ordering {
        self.dim()
            .cmp(&other.dim())
            .then_with(|| self.0.cmp(&other.0))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl FromStr for Point {
    type Err = GeometryError;

    /// Parses `"(1,2,3)"` or `"1,2,3"`.
    fn from_str(s: &str) -> Result<Self> {
        let s = s.trim();
        let s = s.strip_prefix('(').unwrap_or(s);
        let s = s.strip_suffix(')').unwrap_or(s);
        let coords: Result<Vec<i64>> = s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<i64>()
                    .map_err(|e| GeometryError::Parse(format!("bad coordinate {part:?}: {e}")))
            })
            .collect();
        Point::new(coords?)
    }
}

impl ToJson for Point {
    /// Serializes in the paper notation, e.g. `"(1,2,3)"`.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Point {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| JsonError::msg("expected point string"))?;
        s.parse().map_err(|e| JsonError::msg(format!("{e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Point::new(vec![]), Err(GeometryError::ZeroDimensional));
    }

    #[test]
    fn row_major_order_matches_paper_definition() {
        // x < y iff exists k: x_k < y_k and x_i = y_i for i < k.
        let a = Point::from_slice(&[1, 9, 9]);
        let b = Point::from_slice(&[2, 0, 0]);
        assert!(a < b);
        let c = Point::from_slice(&[1, 2, 3]);
        let d = Point::from_slice(&[1, 2, 4]);
        assert!(c < d);
        assert_eq!(c.cmp(&c), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let a = Point::from_slice(&[1, 2]);
        let b = Point::from_slice(&[10, -5]);
        assert_eq!(a.add(&b).unwrap(), Point::from_slice(&[11, -3]));
        assert_eq!(b.sub(&a).unwrap(), Point::from_slice(&[9, -7]));
        assert_eq!(a.linf_distance(&b).unwrap(), 9);
    }

    #[test]
    fn mismatched_dims_error() {
        let a = Point::from_slice(&[1]);
        let b = Point::from_slice(&[1, 2]);
        assert!(matches!(
            a.add(&b),
            Err(GeometryError::DimensionMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let p = Point::from_slice(&[3, -1, 42]);
        let s = p.to_string();
        assert_eq!(s, "(3,-1,42)");
        assert_eq!(s.parse::<Point>().unwrap(), p);
        assert_eq!("7, 8".parse::<Point>().unwrap(), Point::from_slice(&[7, 8]));
        assert!("()".parse::<Point>().is_err());
        assert!("1,x".parse::<Point>().is_err());
    }

    #[test]
    fn origin_is_zeroes() {
        assert_eq!(Point::origin(3), Point::from_slice(&[0, 0, 0]));
    }
}
