//! Bounded multidimensional intervals (spatial domains).

use std::fmt;
use std::str::FromStr;

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{GeometryError, Result};
use crate::point::Point;

/// A closed integer range `[lo:hi]` along one axis (`lo <= hi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AxisRange {
    lo: i64,
    hi: i64,
}

impl AxisRange {
    /// Creates the range `[lo:hi]`.
    ///
    /// # Errors
    /// Returns [`GeometryError::EmptyAxis`] if `lo > hi` (axis index reported
    /// as 0; [`Domain::new`] re-reports with the true axis).
    pub fn new(lo: i64, hi: i64) -> Result<Self> {
        if lo > hi {
            return Err(GeometryError::EmptyAxis { axis: 0, lo, hi });
        }
        Ok(AxisRange { lo, hi })
    }

    /// Lower bound (inclusive).
    #[must_use]
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Upper bound (inclusive).
    #[must_use]
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// Number of integer coordinates in the range.
    #[must_use]
    pub fn extent(&self) -> u64 {
        self.hi.abs_diff(self.lo) + 1
    }

    /// Whether `x` lies in the range.
    #[must_use]
    pub fn contains(&self, x: i64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` is fully inside `self`.
    #[must_use]
    pub fn contains_range(&self, other: &AxisRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two ranges share at least one coordinate.
    #[must_use]
    pub fn intersects(&self, other: &AxisRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection of the two ranges, if non-empty.
    #[must_use]
    pub fn intersection(&self, other: &AxisRange) -> Option<AxisRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(AxisRange { lo, hi })
    }

    /// Smallest range containing both inputs.
    #[must_use]
    pub fn hull(&self, other: &AxisRange) -> AxisRange {
        AxisRange {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Gap between two ranges: 0 when they intersect or touch, otherwise the
    /// number of coordinates strictly between them.
    #[must_use]
    pub fn gap(&self, other: &AxisRange) -> u64 {
        if self.intersects(other) {
            0
        } else if self.hi < other.lo {
            other.lo.abs_diff(self.hi) - 1
        } else {
            self.lo.abs_diff(other.hi) - 1
        }
    }
}

/// A bounded d-dimensional interval `[l_1:u_1, ..., l_d:u_d]` — the spatial
/// domain of an MDD object or of one of its tiles (§3 of the paper).
///
/// `Domain` is the workhorse type of the library: tiles, query regions and
/// array extents are all domains. Construction validates `lo <= hi` on every
/// axis, so every `Domain` is non-empty by construction.
///
/// The [`Display`](fmt::Display)/[`FromStr`] notation follows the paper:
/// `"[0:120,0:159,0:119]"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Domain(Vec<AxisRange>);

impl Domain {
    /// Creates a domain from per-axis ranges.
    ///
    /// # Errors
    /// [`GeometryError::ZeroDimensional`] for an empty list.
    pub fn new(ranges: Vec<AxisRange>) -> Result<Self> {
        if ranges.is_empty() {
            return Err(GeometryError::ZeroDimensional);
        }
        Ok(Domain(ranges))
    }

    /// Creates a domain from `(lo, hi)` bound pairs.
    ///
    /// # Errors
    /// [`GeometryError::ZeroDimensional`] or [`GeometryError::EmptyAxis`].
    pub fn from_bounds(bounds: &[(i64, i64)]) -> Result<Self> {
        if bounds.is_empty() {
            return Err(GeometryError::ZeroDimensional);
        }
        let ranges: Result<Vec<AxisRange>> = bounds
            .iter()
            .enumerate()
            .map(|(axis, &(lo, hi))| {
                AxisRange::new(lo, hi).map_err(|_| GeometryError::EmptyAxis { axis, lo, hi })
            })
            .collect();
        Ok(Domain(ranges?))
    }

    /// Creates the domain spanning `lowest..=highest` on every axis.
    ///
    /// # Errors
    /// Propagates the errors of [`Domain::from_bounds`].
    pub fn from_corners(lowest: &Point, highest: &Point) -> Result<Self> {
        if lowest.dim() != highest.dim() {
            return Err(GeometryError::DimensionMismatch {
                left: lowest.dim(),
                right: highest.dim(),
            });
        }
        let bounds: Vec<(i64, i64)> = lowest
            .coords()
            .iter()
            .zip(highest.coords())
            .map(|(&l, &h)| (l, h))
            .collect();
        Domain::from_bounds(&bounds)
    }

    /// The single-cell domain containing exactly `point`.
    #[must_use]
    pub fn cell(point: &Point) -> Self {
        Domain(
            point
                .coords()
                .iter()
                .map(|&c| AxisRange { lo: c, hi: c })
                .collect(),
        )
    }

    /// Dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Per-axis ranges.
    #[must_use]
    pub fn ranges(&self) -> &[AxisRange] {
        &self.0
    }

    /// The range along `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= self.dim()`.
    #[must_use]
    pub fn axis(&self, axis: usize) -> AxisRange {
        self.0[axis]
    }

    /// Lower bound along `axis`.
    #[must_use]
    pub fn lo(&self, axis: usize) -> i64 {
        self.0[axis].lo
    }

    /// Upper bound along `axis`.
    #[must_use]
    pub fn hi(&self, axis: usize) -> i64 {
        self.0[axis].hi
    }

    /// Number of coordinates along `axis`.
    #[must_use]
    pub fn extent(&self, axis: usize) -> u64 {
        self.0[axis].extent()
    }

    /// Extents along every axis.
    #[must_use]
    pub fn extents(&self) -> Vec<u64> {
        self.0.iter().map(AxisRange::extent).collect()
    }

    /// Lowest corner `(l_1, ..., l_d)`.
    #[must_use]
    pub fn lowest(&self) -> Point {
        Point::new(self.0.iter().map(|r| r.lo).collect()).expect("domain is non-empty")
    }

    /// Highest corner `(u_1, ..., u_d)`.
    #[must_use]
    pub fn highest(&self) -> Point {
        Point::new(self.0.iter().map(|r| r.hi).collect()).expect("domain is non-empty")
    }

    /// Total number of cells, checked against `u64` overflow.
    ///
    /// # Errors
    /// [`GeometryError::CellCountOverflow`] when the product exceeds `u64`.
    pub fn cell_count(&self) -> Result<u64> {
        self.0.iter().try_fold(1u64, |acc, r| {
            acc.checked_mul(r.extent())
                .ok_or(GeometryError::CellCountOverflow)
        })
    }

    /// Number of cells, panicking on overflow. Use for domains known small.
    #[must_use]
    pub fn cells(&self) -> u64 {
        self.cell_count().expect("cell count overflow")
    }

    /// Size in bytes for a given cell size.
    ///
    /// # Errors
    /// [`GeometryError::CellCountOverflow`] on overflow.
    pub fn size_bytes(&self, cell_size: usize) -> Result<u64> {
        self.cell_count()?
            .checked_mul(cell_size as u64)
            .ok_or(GeometryError::CellCountOverflow)
    }

    /// Whether `point` lies inside the domain.
    #[must_use]
    pub fn contains_point(&self, point: &Point) -> bool {
        point.dim() == self.dim()
            && self
                .0
                .iter()
                .zip(point.coords())
                .all(|(r, &c)| r.contains(c))
    }

    /// Whether `other` is entirely inside `self`.
    #[must_use]
    pub fn contains_domain(&self, other: &Domain) -> bool {
        other.dim() == self.dim()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| a.contains_range(b))
    }

    /// Whether the two domains share at least one cell.
    #[must_use]
    pub fn intersects(&self, other: &Domain) -> bool {
        other.dim() == self.dim() && self.0.iter().zip(&other.0).all(|(a, b)| a.intersects(b))
    }

    /// Intersection, if non-empty.
    #[must_use]
    pub fn intersection(&self, other: &Domain) -> Option<Domain> {
        if other.dim() != self.dim() {
            return None;
        }
        let ranges: Option<Vec<AxisRange>> = self
            .0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| a.intersection(b))
            .collect();
        ranges.map(Domain)
    }

    /// Closure operation of §4: the minimal interval containing both domains.
    ///
    /// # Errors
    /// [`GeometryError::DimensionMismatch`] when dimensionalities differ.
    pub fn hull(&self, other: &Domain) -> Result<Domain> {
        if other.dim() != self.dim() {
            return Err(GeometryError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(Domain(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.hull(b))
                .collect(),
        ))
    }

    /// Chebyshev distance between two domains: 0 when they intersect,
    /// otherwise the largest per-axis gap. Used by statistic tiling to decide
    /// whether two logged accesses are "closer than `DistanceThreshold`".
    ///
    /// # Errors
    /// [`GeometryError::DimensionMismatch`] when dimensionalities differ.
    pub fn distance(&self, other: &Domain) -> Result<u64> {
        if other.dim() != self.dim() {
            return Err(GeometryError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(self
            .0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| a.gap(b))
            .max()
            .unwrap_or(0))
    }

    /// Translates the domain by `offset` (component-wise).
    ///
    /// # Errors
    /// [`GeometryError::DimensionMismatch`] when dimensionalities differ.
    pub fn translate(&self, offset: &Point) -> Result<Domain> {
        if offset.dim() != self.dim() {
            return Err(GeometryError::DimensionMismatch {
                left: self.dim(),
                right: offset.dim(),
            });
        }
        Ok(Domain(
            self.0
                .iter()
                .zip(offset.coords())
                .map(|(r, &o)| AxisRange {
                    lo: r.lo + o,
                    hi: r.hi + o,
                })
                .collect(),
        ))
    }

    /// Returns a copy with `axis` replaced by `range`.
    ///
    /// # Errors
    /// [`GeometryError::AxisOutOfRange`] for a bad axis index.
    pub fn with_axis(&self, axis: usize, range: AxisRange) -> Result<Domain> {
        if axis >= self.dim() {
            return Err(GeometryError::AxisOutOfRange {
                axis,
                dim: self.dim(),
            });
        }
        let mut ranges = self.0.clone();
        ranges[axis] = range;
        Ok(Domain(ranges))
    }

    /// Drops the axes in `fixed` (sorted, deduplicated internally), producing
    /// the lower-dimensional domain of a *section* access (§5.1 type (d)).
    ///
    /// # Errors
    /// [`GeometryError::AxisOutOfRange`] for a bad axis;
    /// [`GeometryError::ZeroDimensional`] when all axes would be dropped.
    pub fn project_out(&self, fixed: &[usize]) -> Result<Domain> {
        for &axis in fixed {
            if axis >= self.dim() {
                return Err(GeometryError::AxisOutOfRange {
                    axis,
                    dim: self.dim(),
                });
            }
        }
        let ranges: Vec<AxisRange> = self
            .0
            .iter()
            .enumerate()
            .filter(|(i, _)| !fixed.contains(i))
            .map(|(_, r)| *r)
            .collect();
        Domain::new(ranges)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, r) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}:{}", r.lo, r.hi)?;
        }
        write!(f, "]")
    }
}

impl FromStr for Domain {
    type Err = GeometryError;

    /// Parses the paper notation `"[l1:u1,l2:u2,...]"`.
    fn from_str(s: &str) -> Result<Self> {
        let s = s.trim();
        let inner = s
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| GeometryError::Parse(format!("domain must be bracketed: {s:?}")))?;
        let mut bounds = Vec::new();
        for (axis, part) in inner.split(',').enumerate() {
            let (lo, hi) = part.split_once(':').ok_or_else(|| {
                GeometryError::Parse(format!("axis {axis}: missing ':' in {part:?}"))
            })?;
            let lo: i64 = lo.trim().parse().map_err(|e| {
                GeometryError::Parse(format!("axis {axis}: bad lower bound {lo:?}: {e}"))
            })?;
            let hi: i64 = hi.trim().parse().map_err(|e| {
                GeometryError::Parse(format!("axis {axis}: bad upper bound {hi:?}: {e}"))
            })?;
            bounds.push((lo, hi));
        }
        Domain::from_bounds(&bounds)
    }
}

impl ToJson for Domain {
    /// Serializes in the paper notation, e.g. `"[0:120,0:159]"`.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Domain {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| JsonError::msg("expected domain string"))?;
        s.parse().map_err(|e| JsonError::msg(format!("{e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Domain::from_bounds(&[]).is_err());
        assert!(matches!(
            Domain::from_bounds(&[(0, 5), (3, 2)]),
            Err(GeometryError::EmptyAxis { axis: 1, .. })
        ));
        assert!(Domain::from_bounds(&[(5, 5)]).is_ok());
    }

    #[test]
    fn display_parse_round_trip() {
        let dom = d("[0:120,0:159,0:119]");
        assert_eq!(dom.to_string(), "[0:120,0:159,0:119]");
        assert_eq!(dom.dim(), 3);
        assert_eq!(dom.extent(0), 121);
        assert!(d("[-5:-1]").contains_point(&Point::from_slice(&[-3])));
        assert!("[1:2".parse::<Domain>().is_err());
        assert!("[2:1]".parse::<Domain>().is_err());
        assert!("[a:b]".parse::<Domain>().is_err());
    }

    #[test]
    fn cell_count_and_bytes() {
        let dom = d("[1:730,1:60,1:100]");
        assert_eq!(dom.cells(), 730 * 60 * 100);
        // 4-byte cells -> the 16.7 MB cube from Table 1.
        assert_eq!(dom.size_bytes(4).unwrap(), 730 * 60 * 100 * 4);
        let huge = Domain::from_bounds(&[(0, i64::MAX - 1), (0, i64::MAX - 1)]).unwrap();
        assert_eq!(huge.cell_count(), Err(GeometryError::CellCountOverflow));
    }

    #[test]
    fn containment_and_intersection() {
        let m = d("[0:9,0:9]");
        let q = d("[3:5,8:12]");
        assert!(!m.contains_domain(&q));
        assert!(m.intersects(&q));
        assert_eq!(m.intersection(&q), Some(d("[3:5,8:9]")));
        let disjoint = d("[20:30,0:9]");
        assert!(!m.intersects(&disjoint));
        assert_eq!(m.intersection(&disjoint), None);
        // Mismatched dims are simply "not intersecting".
        assert!(!m.intersects(&d("[0:1]")));
    }

    #[test]
    fn hull_is_closure_operation() {
        let a = d("[0:4,0:4]");
        let b = d("[8:9,2:3]");
        assert_eq!(a.hull(&b).unwrap(), d("[0:9,0:4]"));
        assert!(a.hull(&d("[0:1]")).is_err());
    }

    #[test]
    fn distance_is_chebyshev_gap() {
        let a = d("[0:4,0:4]");
        assert_eq!(a.distance(&d("[2:3,2:3]")).unwrap(), 0);
        assert_eq!(a.distance(&d("[6:8,0:4]")).unwrap(), 1);
        assert_eq!(a.distance(&d("[6:8,10:12]")).unwrap(), 5);
        // Touching ranges have gap 0.
        assert_eq!(a.distance(&d("[5:8,0:4]")).unwrap(), 0);
    }

    #[test]
    fn translate_and_with_axis() {
        let a = d("[0:4,10:14]");
        let t = a.translate(&Point::from_slice(&[100, -10])).unwrap();
        assert_eq!(t, d("[100:104,0:4]"));
        let w = a.with_axis(1, AxisRange::new(0, 0).unwrap()).unwrap();
        assert_eq!(w, d("[0:4,0:0]"));
        assert!(a.with_axis(5, AxisRange::new(0, 0).unwrap()).is_err());
    }

    #[test]
    fn project_out_drops_axes() {
        let a = d("[0:4,10:14,20:24]");
        assert_eq!(a.project_out(&[1]).unwrap(), d("[0:4,20:24]"));
        assert_eq!(a.project_out(&[0, 2]).unwrap(), d("[10:14]"));
        assert!(a.project_out(&[0, 1, 2]).is_err());
        assert!(a.project_out(&[7]).is_err());
    }

    #[test]
    fn corners() {
        let a = d("[0:4,10:14]");
        assert_eq!(a.lowest(), Point::from_slice(&[0, 10]));
        assert_eq!(a.highest(), Point::from_slice(&[4, 14]));
        assert_eq!(Domain::from_corners(&a.lowest(), &a.highest()).unwrap(), a);
        assert_eq!(Domain::cell(&Point::from_slice(&[7, 8])), d("[7:7,8:8]"));
    }
}
