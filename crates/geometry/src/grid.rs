//! Regular grid decomposition of a domain into blocks of a given format.

use crate::domain::{AxisRange, Domain};
use crate::error::{GeometryError, Result};

/// Iterator over the blocks of a regular grid laid over `domain`.
///
/// The grid is anchored at the domain's lowest corner and uses a block format
/// `(t_1, ..., t_d)`; border blocks are clipped to the domain, so blocks
/// tile the domain exactly (aligned *regular* tiling of §4 — the parallel
/// cut hyperplanes are equidistant except at the upper border).
#[derive(Debug, Clone)]
pub struct GridIter {
    domain: Domain,
    format: Vec<u64>,
    /// Lower corner of the next block; `None` once exhausted.
    cursor: Option<Vec<i64>>,
}

impl GridIter {
    /// Creates the grid with block format `format` over `domain`.
    ///
    /// # Errors
    /// [`GeometryError::DimensionMismatch`] when the format length differs
    /// from the dimensionality; [`GeometryError::Parse`] when any format
    /// entry is zero.
    pub fn new(domain: Domain, format: &[u64]) -> Result<Self> {
        if format.len() != domain.dim() {
            return Err(GeometryError::DimensionMismatch {
                left: domain.dim(),
                right: format.len(),
            });
        }
        if format.contains(&0) {
            return Err(GeometryError::Parse(
                "grid block format entries must be positive".to_string(),
            ));
        }
        let cursor = Some(domain.lowest().coords().to_vec());
        Ok(GridIter {
            domain,
            format: format.to_vec(),
            cursor,
        })
    }

    /// Number of blocks the grid contains.
    #[must_use]
    pub fn block_count(&self) -> u64 {
        self.domain
            .ranges()
            .iter()
            .zip(&self.format)
            .map(|(r, &t)| r.extent().div_ceil(t))
            .product()
    }
}

impl Iterator for GridIter {
    type Item = Domain;

    fn next(&mut self) -> Option<Domain> {
        let lows = self.cursor.take()?;
        let ranges: Vec<AxisRange> = lows
            .iter()
            .enumerate()
            .map(|(i, &lo)| {
                // Clip the block's upper bound to the domain border. Format
                // entries fit i64 because extents do.
                let hi = (lo + self.format[i] as i64 - 1).min(self.domain.hi(i));
                AxisRange::new(lo, hi).expect("lo <= hi inside domain")
            })
            .collect();
        let block = Domain::new(ranges).expect("non-empty");
        // Advance to the next block origin, last axis fastest.
        let mut lows = lows;
        for axis in (0..self.domain.dim()).rev() {
            let step = self.format[axis] as i64;
            if lows[axis] + step <= self.domain.hi(axis) {
                lows[axis] += step;
                self.cursor = Some(lows);
                return Some(block);
            }
            lows[axis] = self.domain.lo(axis);
        }
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn exact_grid() {
        let blocks: Vec<Domain> = GridIter::new(d("[0:3,0:3]"), &[2, 2]).unwrap().collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0], d("[0:1,0:1]"));
        assert_eq!(blocks[3], d("[2:3,2:3]"));
    }

    #[test]
    fn border_blocks_are_clipped() {
        let blocks: Vec<Domain> = GridIter::new(d("[0:4,0:2]"), &[3, 2]).unwrap().collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[1], d("[0:2,2:2]"));
        assert_eq!(blocks[3], d("[3:4,2:2]"));
    }

    #[test]
    fn block_count_matches() {
        let g = GridIter::new(d("[1:730,1:60,1:100]"), &[31, 15, 13]).unwrap();
        assert_eq!(g.block_count(), 24 * 4 * 8);
        assert_eq!(g.clone().count() as u64, g.block_count());
    }

    #[test]
    fn single_block_when_format_exceeds_domain() {
        let blocks: Vec<Domain> = GridIter::new(d("[5:9]"), &[100]).unwrap().collect();
        assert_eq!(blocks, vec![d("[5:9]")]);
    }

    #[test]
    fn grid_covers_domain_disjointly() {
        let dom = d("[0:10,0:7]");
        let blocks: Vec<Domain> = GridIter::new(dom.clone(), &[4, 3]).unwrap().collect();
        let total: u64 = blocks.iter().map(Domain::cells).sum();
        assert_eq!(total, dom.cells());
        for (i, a) in blocks.iter().enumerate() {
            assert!(dom.contains_domain(a));
            for b in &blocks[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn rejects_bad_format() {
        assert!(GridIter::new(d("[0:3,0:3]"), &[2]).is_err());
        assert!(GridIter::new(d("[0:3,0:3]"), &[2, 0]).is_err());
    }
}
