//! Iteration over the cells of a domain and run decomposition of subdomains.
//!
//! Copying cells between a tile and a query result is the dominant CPU cost
//! of query post-processing (`t_cpu` in §6). Rather than iterating cell by
//! cell, [`RunIter`] decomposes the intersection region into *runs* —
//! maximal row-major-contiguous cell sequences — so each run is a single
//! `copy_from_slice`.

use crate::domain::Domain;
use crate::error::{GeometryError, Result};
use crate::order::RowMajor;
use crate::point::Point;

/// Iterator over all points of a domain in row-major order.
#[derive(Debug, Clone)]
pub struct PointIter {
    domain: Domain,
    /// Next point to yield; `None` once exhausted.
    next: Option<Vec<i64>>,
}

impl PointIter {
    /// Creates an iterator over all cells of `domain`.
    #[must_use]
    pub fn new(domain: Domain) -> Self {
        let next = Some(domain.lowest().coords().to_vec());
        PointIter { domain, next }
    }
}

impl Iterator for PointIter {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let current = self.next.take()?;
        let point = Point::new(current.clone()).expect("domain is non-empty");
        // Advance like a d-digit odometer, last axis fastest.
        let mut coords = current;
        for axis in (0..self.domain.dim()).rev() {
            if coords[axis] < self.domain.hi(axis) {
                coords[axis] += 1;
                self.next = Some(coords);
                return Some(point);
            }
            coords[axis] = self.domain.lo(axis);
        }
        // Wrapped around on every axis: iteration complete.
        Some(point)
    }
}

/// One contiguous run of cells shared between an enclosing domain and a
/// subdomain of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Offset (in cells) of the run start within the *enclosing* domain.
    pub outer_offset: u64,
    /// Offset (in cells) of the run start within the *subdomain*.
    pub inner_offset: u64,
    /// Length of the run in cells.
    pub len: u64,
}

/// Iterator over the row-major runs of `sub` inside `outer`.
///
/// Each yielded [`Run`] identifies `len` cells that are contiguous in both
/// the row-major layout of `outer` and that of `sub`, enabling bulk copies.
#[derive(Debug, Clone)]
pub struct RunIter {
    outer: RowMajor,
    inner: RowMajor,
    /// Coordinates of the current run start; `None` once exhausted.
    cursor: Option<Vec<i64>>,
    run_len: u64,
}

impl RunIter {
    /// Creates the run decomposition of `sub` within `outer`.
    ///
    /// # Errors
    /// [`GeometryError::NotContained`] when `sub` is not inside `outer`;
    /// [`GeometryError::CellCountOverflow`] for oversized domains.
    pub fn new(outer: &Domain, sub: &Domain) -> Result<Self> {
        if !outer.contains_domain(sub) {
            return Err(GeometryError::NotContained);
        }
        let d = outer.dim();
        let run_len = sub.extent(d - 1);
        Ok(RunIter {
            outer: RowMajor::new(outer.clone())?,
            inner: RowMajor::new(sub.clone())?,
            cursor: Some(sub.lowest().coords().to_vec()),
            run_len,
        })
    }

    /// Total number of runs the iterator will yield.
    #[must_use]
    pub fn run_count(&self) -> u64 {
        self.inner.cells() / self.run_len
    }

    /// Length of each run in cells.
    #[must_use]
    pub fn run_len(&self) -> u64 {
        self.run_len
    }
}

impl Iterator for RunIter {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        let coords = self.cursor.take()?;
        let start = Point::new(coords.clone()).expect("non-empty");
        let run = Run {
            outer_offset: self
                .outer
                .offset_of(&start)
                .expect("run start inside outer"),
            inner_offset: self
                .inner
                .offset_of(&start)
                .expect("run start inside inner"),
            len: self.run_len,
        };
        // Advance the odometer over all axes but the last (the run axis).
        let d = coords.len();
        let sub = self.inner.domain();
        let mut coords = coords;
        if d == 1 {
            return Some(run); // single run covers the whole 1-D subdomain
        }
        for axis in (0..d - 1).rev() {
            if coords[axis] < sub.hi(axis) {
                coords[axis] += 1;
                self.cursor = Some(coords);
                return Some(run);
            }
            coords[axis] = sub.lo(axis);
        }
        Some(run)
    }
}

/// Copies the cells of `src_region` from a buffer laid out over `src_domain`
/// into a buffer laid out over `dst_domain`, for `cell_size`-byte cells.
///
/// `region` must be contained in both domains. Returns the number of cells
/// copied (used for `t_cpu` accounting).
///
/// # Errors
/// [`GeometryError::NotContained`] when the region is outside either domain.
///
/// # Panics
/// Panics if either buffer is smaller than its domain requires.
pub fn copy_region(
    src_domain: &Domain,
    src: &[u8],
    dst_domain: &Domain,
    dst: &mut [u8],
    region: &Domain,
    cell_size: usize,
) -> Result<u64> {
    if !dst_domain.contains_domain(region) {
        return Err(GeometryError::NotContained);
    }
    let src_runs = RunIter::new(src_domain, region)?;
    let dst_runs = RunIter::new(dst_domain, region)?;
    let mut copied = 0u64;
    for (s, d) in src_runs.zip(dst_runs) {
        debug_assert_eq!(s.len, d.len);
        debug_assert_eq!(s.inner_offset, d.inner_offset);
        let len = s.len as usize * cell_size;
        let s0 = s.outer_offset as usize * cell_size;
        let d0 = d.outer_offset as usize * cell_size;
        dst[d0..d0 + len].copy_from_slice(&src[s0..s0 + len]);
        copied += s.len;
    }
    Ok(copied)
}

/// Fills the cells of `region` within a buffer laid out over `domain` with a
/// repeating `cell` pattern (the default value of uncovered areas, §4).
///
/// # Errors
/// [`GeometryError::NotContained`] when the region is outside the domain.
pub fn fill_region(domain: &Domain, buf: &mut [u8], region: &Domain, cell: &[u8]) -> Result<u64> {
    let runs = RunIter::new(domain, region)?;
    let cell_size = cell.len();
    let mut filled = 0u64;
    for run in runs {
        let start = run.outer_offset as usize * cell_size;
        for i in 0..run.len as usize {
            let at = start + i * cell_size;
            buf[at..at + cell_size].copy_from_slice(cell);
        }
        filled += run.len;
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn point_iter_visits_all_cells_in_order() {
        let dom = d("[0:1,5:7]");
        let pts: Vec<Point> = PointIter::new(dom.clone()).collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], Point::from_slice(&[0, 5]));
        assert_eq!(pts[1], Point::from_slice(&[0, 6]));
        assert_eq!(pts[3], Point::from_slice(&[1, 5]));
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn point_iter_single_cell() {
        let pts: Vec<Point> = PointIter::new(d("[3:3,4:4]")).collect();
        assert_eq!(pts, vec![Point::from_slice(&[3, 4])]);
    }

    #[test]
    fn run_iter_covers_subdomain_exactly() {
        let outer = d("[0:3,0:3]");
        let sub = d("[1:2,1:2]");
        let runs: Vec<Run> = RunIter::new(&outer, &sub).unwrap().collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0],
            Run {
                outer_offset: 5,
                inner_offset: 0,
                len: 2
            }
        );
        assert_eq!(
            runs[1],
            Run {
                outer_offset: 9,
                inner_offset: 2,
                len: 2
            }
        );
    }

    #[test]
    fn run_iter_requires_containment() {
        assert!(RunIter::new(&d("[0:3,0:3]"), &d("[2:5,0:1]")).is_err());
    }

    #[test]
    fn run_iter_full_domain_is_one_run_per_row_block() {
        let outer = d("[0:2,0:4]");
        let runs: Vec<Run> = RunIter::new(&outer, &outer).unwrap().collect();
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.len == 5));
        assert_eq!(runs[2].outer_offset, 10);
    }

    #[test]
    fn run_iter_one_dimensional() {
        let runs: Vec<Run> = RunIter::new(&d("[0:9]"), &d("[3:5]")).unwrap().collect();
        assert_eq!(
            runs,
            vec![Run {
                outer_offset: 3,
                inner_offset: 0,
                len: 3
            }]
        );
    }

    #[test]
    fn copy_region_moves_expected_bytes() {
        // 4x4 source of u8 cells numbered 0..16; copy the center 2x2 into a
        // 2x2 destination.
        let src_dom = d("[0:3,0:3]");
        let src: Vec<u8> = (0..16).collect();
        let dst_dom = d("[1:2,1:2]");
        let mut dst = vec![0u8; 4];
        let copied = copy_region(&src_dom, &src, &dst_dom, &mut dst, &dst_dom, 1).unwrap();
        assert_eq!(copied, 4);
        assert_eq!(dst, vec![5, 6, 9, 10]);
    }

    #[test]
    fn copy_region_multibyte_cells() {
        let src_dom = d("[0:1,0:1]");
        let src: Vec<u8> = vec![1, 1, 2, 2, 3, 3, 4, 4]; // 2-byte cells
        let dst_dom = d("[0:1,0:1]");
        let mut dst = vec![0u8; 8];
        let region = d("[1:1,0:1]");
        copy_region(&src_dom, &src, &dst_dom, &mut dst, &region, 2).unwrap();
        assert_eq!(dst, vec![0, 0, 0, 0, 3, 3, 4, 4]);
    }

    #[test]
    fn fill_region_writes_default_cells() {
        let dom = d("[0:1,0:2]");
        let mut buf = vec![9u8; 6];
        let filled = fill_region(&dom, &mut buf, &d("[0:0,1:2]"), &[7]).unwrap();
        assert_eq!(filled, 2);
        assert_eq!(buf, vec![9, 7, 7, 9, 9, 9]);
    }

    #[test]
    fn run_count_matches_iteration() {
        let outer = d("[0:5,0:5,0:5]");
        let sub = d("[1:4,2:3,0:5]");
        let it = RunIter::new(&outer, &sub).unwrap();
        assert_eq!(it.run_count(), 8);
        assert_eq!(it.run_len(), 6);
        assert_eq!(it.clone().count() as u64, it.run_count());
    }
}
