//! Z-order (Morton) linearization of points.
//!
//! The paper's related work (Lamb '94, reference \[11\]) studies tile
//! orderings — scanline vs. Hilbert — for raster storage; bit-interleaved
//! Z-order is the standard cheap approximation of a space-filling curve.
//! The index uses it to sort tiles for bulk loading: spatially close tiles
//! land in the same leaf, tightening directory rectangles.

use crate::domain::Domain;
use crate::point::Point;

/// Number of bits interleaved per coordinate.
const BITS: u32 = 21; // 21 bits × up to 3 axes fits u64; more axes wrap.

/// Computes the Morton key of `point` relative to `origin` (coordinates are
/// offset to be non-negative before interleaving; callers pass the hull's
/// lowest corner).
///
/// Coordinates are clamped to `2^21 - 1` after offsetting, which preserves
/// ordering for the domains real tilings produce; for higher
/// dimensionalities the per-axis bits shrink so the key still fits `u64`.
#[must_use]
pub fn morton_key(point: &Point, origin: &Point) -> u64 {
    let d = point.dim().min(origin.dim());
    let bits = (64 / d.max(1) as u32).min(BITS);
    let mask = (1u64 << bits) - 1;
    let mut key = 0u64;
    for (axis, (&c, &o)) in point
        .coords()
        .iter()
        .zip(origin.coords())
        .enumerate()
        .take(d)
    {
        let v = (c.saturating_sub(o).max(0) as u64).min(mask);
        // Spread the bits of v at stride d, offset by the axis index.
        for b in 0..bits {
            key |= ((v >> b) & 1) << (b as usize * d + axis);
        }
    }
    key
}

/// Sorts domains by the Morton key of their lowest corners (relative to the
/// hull of all inputs). Stable, deterministic.
pub fn sort_by_zorder<T, F: Fn(&T) -> &Domain>(items: &mut [T], domain_of: F) {
    let Some(first) = items.first() else {
        return;
    };
    let hull = items
        .iter()
        .skip(1)
        .fold(domain_of(first).clone(), |acc, t| {
            acc.hull(domain_of(t)).expect("uniform dimensionality")
        });
    let origin = hull.lowest();
    items.sort_by_key(|t| morton_key(&domain_of(t).lowest(), &origin));
}

/// Morton key of `domain`'s bounding-box centroid, relative to `origin`.
///
/// For arbitrary (irregular) tilings the lowest corner is a poor locality
/// proxy — a long thin tile and its small neighbour can share a corner yet
/// cover very different regions — so physical placement keys on the
/// centroid instead. Midpoints round down, which keeps keys deterministic.
#[must_use]
pub fn morton_centroid_key(domain: &Domain, origin: &Point) -> u64 {
    let mid: Vec<i64> = (0..domain.dim())
        .map(|a| {
            let (lo, hi) = (domain.lo(a), domain.hi(a));
            // Average without overflow for extreme bounds.
            lo + (hi - lo) / 2
        })
        .collect();
    morton_key(&Point::from_slice(&mid), origin)
}

/// Sorts domains by the Morton key of their bounding-box centroids
/// (relative to the hull of all inputs) — the on-disk placement order used
/// by the defragmenter. Stable, deterministic.
pub fn sort_by_centroid_zorder<T, F: Fn(&T) -> &Domain>(items: &mut [T], domain_of: F) {
    let Some(first) = items.first() else {
        return;
    };
    let hull = items
        .iter()
        .skip(1)
        .fold(domain_of(first).clone(), |acc, t| {
            acc.hull(domain_of(t)).expect("uniform dimensionality")
        });
    let origin = hull.lowest();
    items.sort_by_key(|t| morton_centroid_key(domain_of(t), &origin));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[i64]) -> Point {
        Point::from_slice(coords)
    }

    #[test]
    fn interleaving_orders_quadrants() {
        let o = p(&[0, 0]);
        // The four corners of a 2x2 grid in Z order. Axis 0 takes the lower
        // interleave positions, so it varies fastest: (0,0), (1,0), (0,1),
        // (1,1).
        let k00 = morton_key(&p(&[0, 0]), &o);
        let k10 = morton_key(&p(&[1, 0]), &o);
        let k01 = morton_key(&p(&[0, 1]), &o);
        let k11 = morton_key(&p(&[1, 1]), &o);
        assert!(k00 < k10 && k10 < k01 && k01 < k11);
    }

    #[test]
    fn locality_beats_row_major_for_blocks() {
        // Points inside one 2x2 block are closer in Z order than the
        // row-major neighbours from the next row block.
        let o = p(&[0, 0]);
        let in_block = morton_key(&p(&[1, 1]), &o);
        let same_row_far = morton_key(&p(&[0, 2]), &o);
        assert!(in_block < same_row_far);
    }

    #[test]
    fn negative_coordinates_offset_by_origin() {
        let o = p(&[-10, -10]);
        let a = morton_key(&p(&[-10, -10]), &o);
        let b = morton_key(&p(&[-9, -9]), &o);
        assert_eq!(a, 0);
        assert!(b > a);
    }

    #[test]
    fn sort_by_zorder_groups_neighbours() {
        let mut blocks: Vec<Domain> = Vec::new();
        for x in 0..4i64 {
            for y in 0..4i64 {
                blocks.push(
                    Domain::from_bounds(&[(x * 10, x * 10 + 9), (y * 10, y * 10 + 9)]).unwrap(),
                );
            }
        }
        sort_by_zorder(&mut blocks, |d| d);
        // The first four blocks after sorting form the lower-left 2x2 tile
        // quadrant — Z-order locality.
        for b in &blocks[..4] {
            assert!(b.lo(0) < 20 && b.lo(1) < 20, "block {b} not in quadrant");
        }
        // Empty and single inputs don't panic.
        let mut empty: Vec<Domain> = Vec::new();
        sort_by_zorder(&mut empty, |d| d);
        let mut one = vec![blocks[0].clone()];
        sort_by_zorder(&mut one, |d| d);
    }

    #[test]
    fn centroid_key_distinguishes_tiles_sharing_a_corner() {
        let o = p(&[0, 0]);
        // A long thin tile and a small tile share the lowest corner (0,0):
        // corner keys tie, centroid keys don't.
        let thin = Domain::from_bounds(&[(0, 63), (0, 1)]).unwrap();
        let small = Domain::from_bounds(&[(0, 3), (0, 3)]).unwrap();
        assert_eq!(
            morton_key(&thin.lowest(), &o),
            morton_key(&small.lowest(), &o)
        );
        assert_ne!(
            morton_centroid_key(&thin, &o),
            morton_centroid_key(&small, &o)
        );
    }

    #[test]
    fn sort_by_centroid_zorder_groups_neighbours() {
        let mut blocks: Vec<Domain> = Vec::new();
        for x in 0..4i64 {
            for y in 0..4i64 {
                blocks.push(
                    Domain::from_bounds(&[(x * 10, x * 10 + 9), (y * 10, y * 10 + 9)]).unwrap(),
                );
            }
        }
        sort_by_centroid_zorder(&mut blocks, |d| d);
        for b in &blocks[..4] {
            assert!(b.lo(0) < 20 && b.lo(1) < 20, "block {b} not in quadrant");
        }
        let mut empty: Vec<Domain> = Vec::new();
        sort_by_centroid_zorder(&mut empty, |d| d);
    }

    #[test]
    fn high_dimensions_still_fit_u64() {
        let o = Point::origin(8);
        let far = p(&[255; 8]);
        let k = morton_key(&far, &o);
        assert!(k > 0);
        let near = p(&[1; 8]);
        assert!(morton_key(&near, &o) < k);
    }
}
