//! Row-major linearization of cells within a domain.
//!
//! §3 of the paper fixes an implicit row-major ("C order") cell ordering for
//! storage on linear media: the *last* axis varies fastest. [`RowMajor`]
//! precomputes the stride table for a domain and converts between points and
//! linear offsets in `O(d)`.

use crate::domain::Domain;
use crate::error::{GeometryError, Result};
use crate::point::Point;

/// Precomputed row-major layout of a domain.
///
/// Offsets are relative to the domain's lowest corner: offset 0 is
/// `(l_1, ..., l_d)` and offset `cells - 1` is `(u_1, ..., u_d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMajor {
    domain: Domain,
    /// `strides[i]` = number of cells spanned by one step along axis `i`.
    strides: Vec<u64>,
    cells: u64,
}

impl RowMajor {
    /// Builds the layout for `domain`.
    ///
    /// # Errors
    /// [`GeometryError::CellCountOverflow`] when the domain has more than
    /// `u64::MAX` cells.
    pub fn new(domain: Domain) -> Result<Self> {
        let d = domain.dim();
        let mut strides = vec![1u64; d];
        for i in (0..d.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1]
                .checked_mul(domain.extent(i + 1))
                .ok_or(GeometryError::CellCountOverflow)?;
        }
        let cells = domain.cell_count()?;
        Ok(RowMajor {
            domain,
            strides,
            cells,
        })
    }

    /// The domain this layout covers.
    #[must_use]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Total number of cells.
    #[must_use]
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Stride (in cells) of one step along `axis`.
    #[must_use]
    pub fn stride(&self, axis: usize) -> u64 {
        self.strides[axis]
    }

    /// Linear offset of `point` within the domain.
    ///
    /// # Errors
    /// [`GeometryError::PointOutOfDomain`] when the point is outside.
    pub fn offset_of(&self, point: &Point) -> Result<u64> {
        if !self.domain.contains_point(point) {
            return Err(GeometryError::PointOutOfDomain);
        }
        let mut off = 0u64;
        for (i, (&c, s)) in point.coords().iter().zip(&self.strides).enumerate() {
            off += c.abs_diff(self.domain.lo(i)) * s;
        }
        Ok(off)
    }

    /// The point at linear offset `offset`.
    ///
    /// # Errors
    /// [`GeometryError::PointOutOfDomain`] when `offset >= cells`.
    pub fn point_at(&self, offset: u64) -> Result<Point> {
        if offset >= self.cells {
            return Err(GeometryError::PointOutOfDomain);
        }
        let mut rem = offset;
        let mut coords = Vec::with_capacity(self.domain.dim());
        for (i, &s) in self.strides.iter().enumerate() {
            let steps = rem / s;
            rem %= s;
            // steps < extent(i) <= u64 of i64 range; safe narrowing.
            coords.push(self.domain.lo(i) + steps as i64);
        }
        Ok(Point::new(coords).expect("domain is non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(s: &str) -> RowMajor {
        RowMajor::new(s.parse().unwrap()).unwrap()
    }

    #[test]
    fn strides_are_row_major() {
        let l = layout("[0:1,0:2,0:3]"); // extents 2,3,4
        assert_eq!(l.stride(0), 12);
        assert_eq!(l.stride(1), 4);
        assert_eq!(l.stride(2), 1);
        assert_eq!(l.cells(), 24);
    }

    #[test]
    fn offset_of_corners() {
        let l = layout("[10:11,20:22]");
        assert_eq!(l.offset_of(&Point::from_slice(&[10, 20])).unwrap(), 0);
        assert_eq!(l.offset_of(&Point::from_slice(&[10, 22])).unwrap(), 2);
        assert_eq!(l.offset_of(&Point::from_slice(&[11, 20])).unwrap(), 3);
        assert_eq!(l.offset_of(&Point::from_slice(&[11, 22])).unwrap(), 5);
        assert!(l.offset_of(&Point::from_slice(&[12, 20])).is_err());
        assert!(l.offset_of(&Point::from_slice(&[10, 19])).is_err());
    }

    #[test]
    fn point_at_inverts_offset_of() {
        let l = layout("[-2:1,5:7]");
        for off in 0..l.cells() {
            let p = l.point_at(off).unwrap();
            assert_eq!(l.offset_of(&p).unwrap(), off);
        }
        assert!(l.point_at(l.cells()).is_err());
    }

    #[test]
    fn one_dimensional() {
        let l = layout("[5:9]");
        assert_eq!(l.stride(0), 1);
        assert_eq!(l.offset_of(&Point::from_slice(&[7])).unwrap(), 2);
        assert_eq!(l.point_at(4).unwrap(), Point::from_slice(&[9]));
    }

    #[test]
    fn ordering_agrees_with_point_order() {
        // Offsets increase exactly when points increase in the §3 order.
        let l = layout("[0:2,0:2]");
        let mut prev: Option<Point> = None;
        for off in 0..l.cells() {
            let p = l.point_at(off).unwrap();
            if let Some(q) = prev {
                assert!(q < p);
            }
            prev = Some(p);
        }
    }
}
