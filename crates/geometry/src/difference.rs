//! Disjoint decomposition of domain differences.
//!
//! Arbitrary tiling allows *partial coverage* of the current domain (§4):
//! the cells of a query region not covered by any tile must be filled with
//! the default value. Computing that uncovered remainder is a repeated
//! domain-difference: start from the query region and subtract each
//! intersecting tile, keeping the remainder as a set of disjoint boxes.

use crate::domain::Domain;
use crate::error::Result;

/// Decomposes `minuend \ subtrahend` into disjoint boxes.
///
/// Returns up to `2d` boxes using axis-by-axis slab splitting; when the
/// domains are disjoint the result is `[minuend]`, and when `subtrahend`
/// covers `minuend` the result is empty.
#[must_use]
pub fn difference(minuend: &Domain, subtrahend: &Domain) -> Vec<Domain> {
    let Some(overlap) = minuend.intersection(subtrahend) else {
        return vec![minuend.clone()];
    };
    let mut pieces = Vec::new();
    // Shrink `remaining` toward the overlap one axis at a time, emitting the
    // slabs cut off on each side.
    let mut remaining = minuend.clone();
    for axis in 0..minuend.dim() {
        let r = remaining.axis(axis);
        let o = overlap.axis(axis);
        if r.lo() < o.lo() {
            let slab = remaining
                .with_axis(
                    axis,
                    crate::domain::AxisRange::new(r.lo(), o.lo() - 1).unwrap(),
                )
                .expect("axis in range");
            pieces.push(slab);
        }
        if o.hi() < r.hi() {
            let slab = remaining
                .with_axis(
                    axis,
                    crate::domain::AxisRange::new(o.hi() + 1, r.hi()).unwrap(),
                )
                .expect("axis in range");
            pieces.push(slab);
        }
        remaining = remaining.with_axis(axis, o).expect("axis in range");
    }
    pieces
}

/// Subtracts every domain in `covers` from `region`, returning the disjoint
/// set of boxes of `region` not covered by any of them.
///
/// # Errors
/// Currently infallible; returns `Result` for interface stability with other
/// geometry operations.
pub fn uncovered(region: &Domain, covers: &[Domain]) -> Result<Vec<Domain>> {
    let mut remainder = vec![region.clone()];
    for cover in covers {
        if remainder.is_empty() {
            break;
        }
        let mut next = Vec::with_capacity(remainder.len());
        for piece in &remainder {
            next.extend(difference(piece, cover));
        }
        remainder = next;
    }
    Ok(remainder)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    fn total_cells(doms: &[Domain]) -> u64 {
        doms.iter().map(Domain::cells).sum()
    }

    fn assert_disjoint(doms: &[Domain]) {
        for (i, a) in doms.iter().enumerate() {
            for b in &doms[i + 1..] {
                assert!(!a.intersects(b), "{a} intersects {b}");
            }
        }
    }

    #[test]
    fn difference_disjoint_inputs() {
        let m = d("[0:4,0:4]");
        assert_eq!(difference(&m, &d("[10:12,0:4]")), vec![m.clone()]);
    }

    #[test]
    fn difference_full_cover_is_empty() {
        assert!(difference(&d("[1:2,1:2]"), &d("[0:4,0:4]")).is_empty());
    }

    #[test]
    fn difference_center_hole() {
        let m = d("[0:4,0:4]");
        let hole = d("[1:3,1:3]");
        let pieces = difference(&m, &hole);
        assert_disjoint(&pieces);
        assert_eq!(total_cells(&pieces), 25 - 9);
        for p in &pieces {
            assert!(m.contains_domain(p));
            assert!(!p.intersects(&hole));
        }
    }

    #[test]
    fn difference_corner_overlap() {
        let m = d("[0:4,0:4]");
        let c = d("[3:8,3:8]");
        let pieces = difference(&m, &c);
        assert_disjoint(&pieces);
        assert_eq!(total_cells(&pieces), 25 - 4);
    }

    #[test]
    fn uncovered_accumulates() {
        let region = d("[0:9,0:9]");
        let covers = vec![d("[0:4,0:9]"), d("[5:9,0:4]")];
        let rest = uncovered(&region, &covers).unwrap();
        assert_disjoint(&rest);
        assert_eq!(total_cells(&rest), 25);
        for p in &rest {
            assert!(d("[5:9,5:9]").contains_domain(p));
        }
    }

    #[test]
    fn uncovered_empty_when_fully_covered() {
        let region = d("[0:3,0:3]");
        let covers = vec![d("[0:1,0:3]"), d("[2:3,0:3]")];
        assert!(uncovered(&region, &covers).unwrap().is_empty());
    }

    #[test]
    fn uncovered_ignores_irrelevant_covers() {
        let region = d("[0:3,0:3]");
        let covers = vec![d("[100:200,100:200]")];
        assert_eq!(uncovered(&region, &covers).unwrap(), vec![region]);
    }

    #[test]
    fn three_dimensional_difference() {
        let m = d("[0:3,0:3,0:3]");
        let s = d("[0:3,0:3,1:2]");
        let pieces = difference(&m, &s);
        assert_disjoint(&pieces);
        assert_eq!(total_cells(&pieces), 64 - 32);
    }
}
