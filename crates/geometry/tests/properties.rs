//! Property-based tests for the geometry invariants listed in DESIGN.md §7.

use proptest::prelude::*;
use tilestore_geometry::{
    copy_region, difference, uncovered, Domain, GridIter, Point, PointIter, RowMajor, RunIter,
};

/// Strategy: a small random domain of dimensionality 1..=4.
fn small_domain() -> impl Strategy<Value = Domain> {
    (1usize..=4)
        .prop_flat_map(|d| {
            proptest::collection::vec((-20i64..20, 0i64..8), d)
                .prop_map(|bounds: Vec<(i64, i64)>| {
                    let bounds: Vec<(i64, i64)> =
                        bounds.into_iter().map(|(lo, ext)| (lo, lo + ext)).collect();
                    Domain::from_bounds(&bounds).unwrap()
                })
        })
}

/// Strategy: a domain plus a random subdomain of it.
fn domain_and_sub() -> impl Strategy<Value = (Domain, Domain)> {
    small_domain().prop_flat_map(|dom| {
        let subs: Vec<BoxedStrategy<(i64, i64)>> = dom
            .ranges()
            .iter()
            .map(|r| {
                let (lo, hi) = (r.lo(), r.hi());
                (lo..=hi)
                    .prop_flat_map(move |a| (Just(a), a..=hi))
                    .boxed()
            })
            .collect();
        (Just(dom), subs).prop_map(|(dom, bounds)| {
            let sub = Domain::from_bounds(&bounds).unwrap();
            (dom, sub)
        })
    })
}

proptest! {
    #[test]
    fn offset_point_round_trip((dom, _) in domain_and_sub()) {
        let layout = RowMajor::new(dom).unwrap();
        let n = layout.cells().min(256);
        for off in 0..n {
            let p = layout.point_at(off).unwrap();
            prop_assert_eq!(layout.offset_of(&p).unwrap(), off);
        }
    }

    #[test]
    fn point_iter_is_sorted_and_complete(dom in small_domain()) {
        let pts: Vec<Point> = PointIter::new(dom.clone()).collect();
        prop_assert_eq!(pts.len() as u64, dom.cells());
        prop_assert!(pts.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(pts.iter().all(|p| dom.contains_point(p)));
    }

    #[test]
    fn runs_cover_subdomain_exactly_once((dom, sub) in domain_and_sub()) {
        let runs: Vec<_> = RunIter::new(&dom, &sub).unwrap().collect();
        let covered: u64 = runs.iter().map(|r| r.len).sum();
        prop_assert_eq!(covered, sub.cells());
        // Runs translate to strictly increasing, non-overlapping inner spans.
        let mut expected_inner = 0u64;
        for r in &runs {
            prop_assert_eq!(r.inner_offset, expected_inner);
            expected_inner += r.len;
        }
    }

    #[test]
    fn intersection_is_commutative_and_contained(a in small_domain(), b in small_domain()) {
        if a.dim() == b.dim() {
            let ab = a.intersection(&b);
            let ba = b.intersection(&a);
            prop_assert_eq!(ab.clone(), ba);
            if let Some(i) = ab {
                prop_assert!(a.contains_domain(&i));
                prop_assert!(b.contains_domain(&i));
            }
        }
    }

    #[test]
    fn hull_contains_both(a in small_domain(), b in small_domain()) {
        if a.dim() == b.dim() {
            let h = a.hull(&b).unwrap();
            prop_assert!(h.contains_domain(&a));
            prop_assert!(h.contains_domain(&b));
        }
    }

    #[test]
    fn difference_partitions_minuend(a in small_domain(), b in small_domain()) {
        if a.dim() == b.dim() {
            let pieces = difference(&a, &b);
            let in_overlap = a.intersection(&b).map_or(0, |i| i.cells());
            let piece_cells: u64 = pieces.iter().map(Domain::cells).sum();
            prop_assert_eq!(piece_cells + in_overlap, a.cells());
            for (i, p) in pieces.iter().enumerate() {
                prop_assert!(a.contains_domain(p));
                prop_assert!(!p.intersects(&b));
                for q in &pieces[i + 1..] {
                    prop_assert!(!p.intersects(q));
                }
            }
        }
    }

    #[test]
    fn uncovered_is_disjoint_complement((dom, sub) in domain_and_sub()) {
        let rest = uncovered(&dom, std::slice::from_ref(&sub)).unwrap();
        let total: u64 = rest.iter().map(Domain::cells).sum();
        prop_assert_eq!(total + sub.cells(), dom.cells());
    }

    #[test]
    fn grid_partitions_domain(dom in small_domain(), fmt_seed in proptest::collection::vec(1u64..5, 4)) {
        let fmt: Vec<u64> = fmt_seed[..dom.dim()].to_vec();
        let blocks: Vec<Domain> = GridIter::new(dom.clone(), &fmt).unwrap().collect();
        let total: u64 = blocks.iter().map(Domain::cells).sum();
        prop_assert_eq!(total, dom.cells());
        for (i, a) in blocks.iter().enumerate() {
            prop_assert!(dom.contains_domain(a));
            for b in &blocks[i + 1..] {
                prop_assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn copy_region_round_trips((dom, sub) in domain_and_sub()) {
        // Write a recognizable pattern, copy out the subregion, copy it back
        // into a cleared buffer, and check only the subregion survived.
        let cells = dom.cells() as usize;
        let src: Vec<u8> = (0..cells).map(|i| (i % 251) as u8).collect();
        let mut extracted = vec![0u8; sub.cells() as usize];
        copy_region(&dom, &src, &sub, &mut extracted, &sub, 1).unwrap();
        let mut rebuilt = vec![0xFFu8; cells];
        copy_region(&sub, &extracted, &dom, &mut rebuilt, &sub, 1).unwrap();
        let layout = RowMajor::new(dom.clone()).unwrap();
        for p in PointIter::new(dom.clone()) {
            let off = layout.offset_of(&p).unwrap() as usize;
            if sub.contains_point(&p) {
                prop_assert_eq!(rebuilt[off], src[off]);
            } else {
                prop_assert_eq!(rebuilt[off], 0xFF);
            }
        }
    }
}
