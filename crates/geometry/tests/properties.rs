//! Property-based tests for the geometry invariants listed in DESIGN.md §7.

use tilestore_geometry::{
    copy_region, difference, uncovered, Domain, GridIter, Point, PointIter, RowMajor, RunIter,
};
use tilestore_testkit::prop::{check, Source};
use tilestore_testkit::{prop_assert, prop_assert_eq};

const CASES: u32 = 256;

/// Generator: a small random domain of dimensionality 1..=4.
fn small_domain(s: &mut Source) -> Domain {
    let d = s.usize_in(1, 4);
    let bounds: Vec<(i64, i64)> = (0..d)
        .map(|_| {
            let lo = s.i64_in(-20, 19);
            let ext = s.i64_in(0, 7);
            (lo, lo + ext)
        })
        .collect();
    Domain::from_bounds(&bounds).unwrap()
}

/// Generator: a domain plus a random subdomain of it.
fn domain_and_sub(s: &mut Source) -> (Domain, Domain) {
    let dom = small_domain(s);
    let bounds: Vec<(i64, i64)> = dom
        .ranges()
        .iter()
        .map(|r| {
            let a = s.i64_in(r.lo(), r.hi());
            let b = s.i64_in(a, r.hi());
            (a, b)
        })
        .collect();
    let sub = Domain::from_bounds(&bounds).unwrap();
    (dom, sub)
}

#[test]
fn offset_point_round_trip() {
    check(
        "offset_point_round_trip",
        CASES,
        |s| domain_and_sub(s).0,
        |dom| {
            let layout = RowMajor::new(dom.clone()).unwrap();
            let n = layout.cells().min(256);
            for off in 0..n {
                let p = layout.point_at(off).unwrap();
                prop_assert_eq!(layout.offset_of(&p).unwrap(), off);
            }
            Ok(())
        },
    );
}

#[test]
fn point_iter_is_sorted_and_complete() {
    check(
        "point_iter_is_sorted_and_complete",
        CASES,
        small_domain,
        |dom| {
            let pts: Vec<Point> = PointIter::new(dom.clone()).collect();
            prop_assert_eq!(pts.len() as u64, dom.cells());
            prop_assert!(pts.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(pts.iter().all(|p| dom.contains_point(p)));
            Ok(())
        },
    );
}

#[test]
fn runs_cover_subdomain_exactly_once() {
    check(
        "runs_cover_subdomain_exactly_once",
        CASES,
        domain_and_sub,
        |(dom, sub)| {
            let runs: Vec<_> = RunIter::new(dom, sub).unwrap().collect();
            let covered: u64 = runs.iter().map(|r| r.len).sum();
            prop_assert_eq!(covered, sub.cells());
            // Runs translate to strictly increasing, non-overlapping inner spans.
            let mut expected_inner = 0u64;
            for r in &runs {
                prop_assert_eq!(r.inner_offset, expected_inner);
                expected_inner += r.len;
            }
            Ok(())
        },
    );
}

#[test]
fn intersection_is_commutative_and_contained() {
    check(
        "intersection_is_commutative_and_contained",
        CASES,
        |s| (small_domain(s), small_domain(s)),
        |(a, b)| {
            if a.dim() == b.dim() {
                let ab = a.intersection(b);
                let ba = b.intersection(a);
                prop_assert_eq!(ab.clone(), ba);
                if let Some(i) = ab {
                    prop_assert!(a.contains_domain(&i));
                    prop_assert!(b.contains_domain(&i));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn hull_contains_both() {
    check(
        "hull_contains_both",
        CASES,
        |s| (small_domain(s), small_domain(s)),
        |(a, b)| {
            if a.dim() == b.dim() {
                let h = a.hull(b).unwrap();
                prop_assert!(h.contains_domain(a));
                prop_assert!(h.contains_domain(b));
            }
            Ok(())
        },
    );
}

#[test]
fn difference_partitions_minuend() {
    check(
        "difference_partitions_minuend",
        CASES,
        |s| (small_domain(s), small_domain(s)),
        |(a, b)| {
            if a.dim() == b.dim() {
                let pieces = difference(a, b);
                let in_overlap = a.intersection(b).map_or(0, |i| i.cells());
                let piece_cells: u64 = pieces.iter().map(Domain::cells).sum();
                prop_assert_eq!(piece_cells + in_overlap, a.cells());
                for (i, p) in pieces.iter().enumerate() {
                    prop_assert!(a.contains_domain(p));
                    prop_assert!(!p.intersects(b));
                    for q in &pieces[i + 1..] {
                        prop_assert!(!p.intersects(q));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn uncovered_is_disjoint_complement() {
    check(
        "uncovered_is_disjoint_complement",
        CASES,
        domain_and_sub,
        |(dom, sub)| {
            let rest = uncovered(dom, std::slice::from_ref(sub)).unwrap();
            let total: u64 = rest.iter().map(Domain::cells).sum();
            prop_assert_eq!(total + sub.cells(), dom.cells());
            Ok(())
        },
    );
}

#[test]
fn grid_partitions_domain() {
    check(
        "grid_partitions_domain",
        CASES,
        |s| {
            let dom = small_domain(s);
            let fmt: Vec<u64> = (0..dom.dim()).map(|_| s.u64_in(1, 4)).collect();
            (dom, fmt)
        },
        |(dom, fmt)| {
            let blocks: Vec<Domain> = GridIter::new(dom.clone(), fmt).unwrap().collect();
            let total: u64 = blocks.iter().map(Domain::cells).sum();
            prop_assert_eq!(total, dom.cells());
            for (i, a) in blocks.iter().enumerate() {
                prop_assert!(dom.contains_domain(a));
                for b in &blocks[i + 1..] {
                    prop_assert!(!a.intersects(b));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn copy_region_round_trips() {
    check(
        "copy_region_round_trips",
        CASES,
        domain_and_sub,
        |(dom, sub)| {
            // Write a recognizable pattern, copy out the subregion, copy it back
            // into a cleared buffer, and check only the subregion survived.
            let cells = dom.cells() as usize;
            let src: Vec<u8> = (0..cells).map(|i| (i % 251) as u8).collect();
            let mut extracted = vec![0u8; sub.cells() as usize];
            copy_region(dom, &src, sub, &mut extracted, sub, 1).unwrap();
            let mut rebuilt = vec![0xFFu8; cells];
            copy_region(sub, &extracted, dom, &mut rebuilt, sub, 1).unwrap();
            let layout = RowMajor::new(dom.clone()).unwrap();
            for p in PointIter::new(dom.clone()) {
                let off = layout.offset_of(&p).unwrap() as usize;
                if sub.contains_point(&p) {
                    prop_assert_eq!(rebuilt[off], src[off]);
                } else {
                    prop_assert_eq!(rebuilt[off], 0xFF);
                }
            }
            Ok(())
        },
    );
}
