//! CLI command implementations, separated from I/O for testability.

use std::fmt::Write as _;
use std::path::Path;

use tilestore_compress::CompressionPolicy;
use tilestore_engine::CachedFileStore;
use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_geometry::{DefDomain, Domain};
use tilestore_rasql::Value;
use tilestore_storage::CostModel;
use tilestore_tiling::{RetileSpec, Scheme};

/// Errors surfaced to the CLI user as plain messages.
pub type CliResult<T> = Result<T, String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Opens an existing database directory.
pub fn open(dir: &Path) -> CliResult<Database<CachedFileStore>> {
    Database::open_dir(dir).map_err(err)
}

/// Creates a fresh database directory.
pub fn init(dir: &Path) -> CliResult<String> {
    let db = Database::create_dir(dir).map_err(err)?;
    db.save(dir).map_err(err)?;
    Ok(format!("created database at {}", dir.display()))
}

/// Parses a cell type name.
pub fn parse_cell_type(name: &str) -> CliResult<CellType> {
    let size = match name {
        "u8" | "i8" => 1,
        "u16" | "i16" => 2,
        "u32" | "i32" | "f32" => 4,
        "u64" | "i64" | "f64" => 8,
        "rgb" => 3,
        other => return Err(format!("unknown cell type {other:?}")),
    };
    Ok(CellType::zeroed(name, size))
}

/// Parses a scheme spec:
/// `regular:<maxKB>` | `aligned:<config>:<maxKB>` |
/// `directional:<axis>=p1/p2/...[,<axis>=...]:<maxKB>` | `single`.
pub fn parse_scheme(spec: &str, dim: usize) -> CliResult<Scheme> {
    // The grammar lives in the tiling crate so the server's retile request
    // accepts exactly the same specs as the CLI.
    tilestore_tiling::parse_scheme_spec(spec, dim)
}

/// `create <name> <celltype> <dim> [scheme]`.
pub fn create(
    db: &Database<CachedFileStore>,
    name: &str,
    cell: &str,
    dim: usize,
    scheme: Option<&str>,
) -> CliResult<String> {
    let cell = parse_cell_type(cell)?;
    let scheme = match scheme {
        Some(spec) => parse_scheme(spec, dim)?,
        None => Scheme::default_for(dim),
    };
    let def = DefDomain::unlimited(dim).map_err(err)?;
    db.create_object(name, MddType::new(cell, def), scheme)
        .map_err(err)?;
    Ok(format!("created object {name:?} ({dim}-D)"))
}

/// `load <name> <domain> <pattern>` — synthesize and insert data.
/// Patterns: `zero`, `gradient`, `checker`, `random:<seed>`.
pub fn load(
    db: &Database<CachedFileStore>,
    name: &str,
    domain: &str,
    pattern: &str,
) -> CliResult<String> {
    let domain: Domain = domain.parse().map_err(err)?;
    let meta = db.object(name).map_err(err)?;
    let cell_size = meta.cell_size();
    let array = synthesize(&domain, cell_size, pattern)?;
    let stats = db.insert(name, &array).map_err(err)?;
    Ok(format!(
        "loaded {} as {} tiles ({} pages)",
        domain, stats.tiles_created, stats.pages_written
    ))
}

fn synthesize(domain: &Domain, cell_size: usize, pattern: &str) -> CliResult<Array> {
    let cells = domain.cell_count().map_err(err)? as usize;
    let mut data = vec![0u8; cells * cell_size];
    match pattern.split(':').next().unwrap_or("zero") {
        "zero" => {}
        "gradient" => {
            for (i, chunk) in data.chunks_exact_mut(cell_size).enumerate() {
                let v = (i % 251) as u8;
                for (lane, b) in chunk.iter_mut().enumerate() {
                    *b = v.wrapping_add(lane as u8);
                }
            }
        }
        "checker" => {
            for (i, chunk) in data.chunks_exact_mut(cell_size).enumerate() {
                let v = if i % 2 == 0 { 0xFF } else { 0x00 };
                chunk.fill(v);
            }
        }
        "random" => {
            let seed: u64 = pattern
                .split_once(':')
                .map_or(Ok(42), |(_, s)| s.parse())
                .map_err(|e| format!("bad seed: {e}"))?;
            let mut x = seed | 1;
            for b in &mut data {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 33) as u8;
            }
        }
        other => return Err(format!("unknown pattern {other:?}")),
    }
    Array::from_bytes(domain.clone(), cell_size, data).map_err(err)
}

/// `query <rasql>` — run a query and render the result.
pub fn query(db: &Database<CachedFileStore>, text: &str) -> CliResult<String> {
    let snap = db.begin_read();
    let (value, stats) = tilestore_rasql::execute(&snap, text).map_err(err)?;
    let model = CostModel::classic_disk();
    let times = stats.times(&model);
    let mut out = String::new();
    match value {
        Value::Array(a) => {
            writeln!(
                out,
                "array over {} ({} cells)",
                a.domain(),
                a.domain().cells()
            )
            .expect("string write");
            if a.domain().cells() <= 64 && a.cell_size() <= 8 {
                writeln!(out, "{}", render_small(&a)).expect("string write");
            }
        }
        Value::Number(n) => writeln!(out, "{n}").expect("string write"),
        Value::Count(c) => writeln!(out, "{c} cells").expect("string write"),
        Value::Bool(b) => writeln!(out, "{b}").expect("string write"),
    }
    write!(
        out,
        "[epoch {}; {} tiles, {} pruned, {} pages, {} bytes read; model t_total={:.4}s]",
        snap.epoch(),
        stats.tiles_read,
        stats.tiles_pruned,
        stats.io.pages_read,
        stats.io.bytes_read,
        times.total_cpu()
    )
    .expect("string write");
    Ok(out)
}

/// `explain <rasql>` — print the planner's per-tile decisions without (or,
/// with `EXPLAIN ANALYZE`, alongside) executing the statement. A bare query
/// is wrapped as `EXPLAIN <query>`; a statement that already starts with
/// `EXPLAIN` runs as written.
pub fn explain(db: &Database<CachedFileStore>, text: &str) -> CliResult<String> {
    let stmt = normalize_explain(text);
    let snap = db.begin_read();
    match tilestore_rasql::execute_statement(&snap, &stmt).map_err(err)? {
        tilestore_rasql::StatementResult::Explain(report) => Ok(render_explain(&report)),
        tilestore_rasql::StatementResult::Value(..) => {
            Err("statement executed instead of explaining; prefix it with EXPLAIN".to_string())
        }
    }
}

fn normalize_explain(text: &str) -> String {
    let head = text.trim_start();
    let already = head
        .get(..7)
        .is_some_and(|w| w.eq_ignore_ascii_case("explain"))
        && head[7..].starts_with(char::is_whitespace);
    if already {
        text.to_string()
    } else {
        format!("EXPLAIN {text}")
    }
}

/// Human-readable rendering of an EXPLAIN report: one line per candidate
/// tile with the decision and the rule that fired, then the totals (and the
/// measured counters when the statement was ANALYZEd).
fn render_explain(report: &tilestore_rasql::ExplainReport) -> String {
    let plan = &report.plan;
    let mut out = String::new();
    write!(out, "object {} region {}", plan.object, plan.region).expect("string write");
    if let Some(p) = &plan.predicate {
        write!(out, " where {p}").expect("string write");
    }
    if let Some(c) = plan.condenser {
        write!(out, " condense {c}").expect("string write");
    }
    writeln!(out, " [epoch {}]", plan.epoch).expect("string write");
    for t in &plan.tiles {
        writeln!(
            out,
            "  tile {:>4} {:<24} {:<10} {}",
            t.tile,
            t.domain,
            t.decision.as_str(),
            t.rule
        )
        .expect("string write");
    }
    write!(
        out,
        "{} candidates via {} index nodes: {} fetched, {} pruned",
        plan.tiles.len(),
        plan.index_nodes,
        plan.fetched(),
        plan.pruned()
    )
    .expect("string write");
    if let Some(a) = &report.analyze {
        write!(
            out,
            "\nanalyze: {} tiles read, {} pruned, {} pages, {} cache hits, {} misses, {:.3} ms",
            a.stats.tiles_read,
            a.stats.tiles_pruned,
            a.stats.io.pages_read,
            a.stats.io.cache_hits,
            a.stats.io.cache_misses,
            a.elapsed_ns as f64 / 1e6
        )
        .expect("string write");
    }
    out
}

/// Renders a tiny array as hex rows (debug aid).
fn render_small(a: &Array) -> String {
    let mut out = String::new();
    for (i, chunk) in a.bytes().chunks(a.cell_size()).enumerate() {
        if i > 0 {
            out.push(' ');
        }
        for b in chunk {
            write!(out, "{b:02x}").expect("string write");
        }
    }
    out
}

/// `info` / `info <name>`.
pub fn info(db: &Database<CachedFileStore>, name: Option<&str>) -> CliResult<String> {
    let mut out = String::new();
    match name {
        None => {
            writeln!(out, "objects: {}", db.object_names().join(", ")).expect("string write");
            let io = db.io_stats().snapshot();
            write!(
                out,
                "session I/O: {} pages read, {} pages written",
                io.pages_read, io.pages_written
            )
            .expect("string write");
        }
        Some(name) => {
            let meta = db.object(name).map_err(err)?;
            writeln!(out, "object:        {name}").expect("string write");
            writeln!(
                out,
                "cell type:     {} ({} B)",
                meta.mdd_type.cell.name,
                meta.cell_size()
            )
            .expect("string write");
            writeln!(out, "definition:    {}", meta.mdd_type.definition).expect("string write");
            match &meta.current_domain {
                Some(cur) => writeln!(out, "current:       {cur}").expect("string write"),
                None => writeln!(out, "current:       (empty)").expect("string write"),
            }
            writeln!(out, "tiles:         {}", meta.tile_count()).expect("string write");
            writeln!(out, "logical bytes: {}", meta.stored_bytes()).expect("string write");
            let phys = db.object_physical_bytes(name).map_err(err)?;
            writeln!(out, "physical bytes:{phys}").expect("string write");
            write!(out, "scheme:        {:?}", meta.scheme).expect("string write");
        }
    }
    Ok(out)
}

/// `compress <name> <none|selective>` — set policy and rewrite tiles.
pub fn compress(db: &Database<CachedFileStore>, name: &str, policy: &str) -> CliResult<String> {
    let policy = match policy {
        "none" => CompressionPolicy::None,
        "selective" => CompressionPolicy::selective_default(),
        other => return Err(format!("unknown policy {other:?} (none|selective)")),
    };
    db.set_compression(name, policy).map_err(err)?;
    let scheme = db.object(name).map_err(err)?.scheme.clone();
    let before = db.object_physical_bytes(name).map_err(err)?;
    db.retile(name, scheme).map_err(err)?;
    let after = db.object_physical_bytes(name).map_err(err)?;
    Ok(format!("rewrote tiles: {before} -> {after} physical bytes"))
}

/// `retile <name> <spec>` where the spec follows the shared
/// [`tilestore_tiling::RETILE_USAGE`] grammar: a scheme,
/// `--from-log[:<dist>:<freq>:<maxKB>]` (statistic tiling over the
/// recorded access log, §5.4), or `--defrag[:<budgetKB>]` (curve-ordered
/// physical compaction; a budget paces it in bounded commits).
pub fn retile(db: &Database<CachedFileStore>, name: &str, spec: &str) -> CliResult<String> {
    match tilestore_tiling::parse_retile_spec(spec)? {
        RetileSpec::FromLog {
            distance,
            frequency,
            max_tile_bytes,
        } => {
            let stats = db
                .auto_retile_from_log(name, distance, frequency, max_tile_bytes)
                .map_err(err)?;
            Ok(format!(
                "retiled from access log: {} -> {} tiles",
                stats.tiles_before, stats.tiles_after
            ))
        }
        RetileSpec::Defrag { budget_bytes: None } => {
            let stats = db.defrag(name).map_err(err)?.stats;
            Ok(format!(
                "defragmented: {} tiles, {} bytes rewritten",
                stats.tiles_after, stats.bytes_rewritten
            ))
        }
        RetileSpec::Defrag {
            budget_bytes: Some(budget),
        } => {
            let mut steps = 0u64;
            let mut bytes = 0u64;
            let mut tiles = 0u64;
            loop {
                let step = db.defrag_step(name, budget).map_err(err)?.stats;
                steps += 1;
                bytes += step.bytes_moved;
                tiles += step.tiles_moved;
                if step.tiles_remaining == 0 {
                    break;
                }
            }
            Ok(format!(
                "defragmented in {steps} paced step(s): {tiles} tiles moved, {bytes} bytes rewritten"
            ))
        }
        RetileSpec::Scheme(spec) => {
            let dim = db.object(name).map_err(err)?.mdd_type.dim();
            let scheme = parse_scheme(&spec, dim)?;
            let stats = db.retile(name, scheme).map_err(err)?;
            Ok(format!(
                "retiled: {} -> {} tiles",
                stats.tiles_before, stats.tiles_after
            ))
        }
    }
}

/// `stats` — database-wide I/O counters, per-object tile counts, the
/// recorded access log size, and the process-wide metric histograms.
pub fn stats(db: &Database<CachedFileStore>) -> CliResult<String> {
    let mut out = String::new();
    writeln!(out, "objects:").expect("string write");
    for name in db.object_names() {
        let meta = db.object(&name).map_err(err)?;
        let phys = db.object_physical_bytes(&name).map_err(err)?;
        writeln!(
            out,
            "  {name}: {} tiles, {} logical bytes, {phys} physical bytes",
            meta.tile_count(),
            meta.stored_bytes()
        )
        .expect("string write");
    }
    let io = db.io_stats().snapshot();
    writeln!(
        out,
        "session I/O: {} pages read, {} pages written, {} blobs read, {} blobs written",
        io.pages_read, io.pages_written, io.blobs_read, io.blobs_written
    )
    .expect("string write");
    writeln!(
        out,
        "cache: {} hits, {} misses",
        io.cache_hits, io.cache_misses
    )
    .expect("string write");
    if let Some(rec) = db.recorder() {
        let total = rec.total_accesses().map_err(err)?;
        writeln!(out, "access log: {total} recorded accesses").expect("string write");
    }
    let snap = tilestore_obs::metrics().snapshot();
    writeln!(out, "metrics:").expect("string write");
    for (name, value) in &snap.counters {
        writeln!(out, "  {name} = {value}").expect("string write");
    }
    for (name, h) in &snap.histograms {
        writeln!(out, "  {name}: {}", h.summary()).expect("string write");
    }
    Ok(out.trim_end().to_string())
}

/// `trace <rasql>` — run one query with the tracer enabled and return the
/// recorded span/event stream as JSON Lines.
pub fn trace(db: &Database<CachedFileStore>, text: &str) -> CliResult<String> {
    let tracer = tilestore_obs::tracer();
    tracer.enable(4096);
    let result = tilestore_rasql::execute(&db.begin_read(), text);
    tracer.disable();
    let jsonl = tracer.drain_jsonl();
    let (_, stats) = result.map_err(err)?;
    let mut out = String::new();
    write!(out, "{jsonl}").expect("string write");
    write!(
        out,
        "[{} tiles, {} pages read, {} ns]",
        stats.tiles_read, stats.io.pages_read, stats.elapsed_ns
    )
    .expect("string write");
    Ok(out)
}

/// `delete <name> <domain>` — remove a region's cells (shrinkage).
pub fn delete(db: &Database<CachedFileStore>, name: &str, domain: &str) -> CliResult<String> {
    let region: Domain = domain.parse().map_err(err)?;
    let stats = db.delete_region(name, &region).map_err(err)?;
    Ok(format!(
        "removed {} cells ({} tiles dropped, {} split)",
        stats.cells_removed, stats.tiles_dropped, stats.tiles_split
    ))
}

/// `drop <name>`.
pub fn drop_object(db: &Database<CachedFileStore>, name: &str) -> CliResult<String> {
    db.drop_object(name).map_err(err)?;
    Ok(format!("dropped {name:?}"))
}

/// `fsck` — audit the database directory: catalog vs page file accounting,
/// per-BLOB checksum verification, tile reference resolution, interrupted
/// commits. Read-only; errors when inconsistencies are found (reopening
/// the database repairs the repairable ones).
pub fn fsck(dir: &Path) -> CliResult<String> {
    let report = tilestore_engine::fsck(dir).map_err(err)?;
    if report.is_clean() {
        Ok(format!("{report}"))
    } else {
        Err(format!("{report}"))
    }
}

/// `serve <addr> [slow-ms]` — serve the database over TCP until a client
/// sends `shutdown` (or the process is killed). Prints the bound address up
/// front so scripts can connect to an ephemeral `:0` port. `slow-ms`
/// overrides the slow-query-log threshold (0 logs every statement).
pub fn serve(dir: &Path, addr: &str, slow_ms: Option<u64>) -> CliResult<String> {
    use std::io::Write as _;
    let db = open(dir)?;
    let shared = tilestore_engine::SharedDatabase::new(db);
    let mut config = tilestore_server::ServerConfig::default();
    if let Some(ms) = slow_ms {
        config.slow_query_ms = ms;
    }
    let handle =
        tilestore_server::serve(shared, Some(dir.to_path_buf()), addr, config).map_err(err)?;
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.join();
    Ok("server stopped".to_string())
}

/// `client <addr> <op> [args...]` — remote counterparts of the local
/// commands, talking to a `serve` instance.
pub fn client(addr: &str, op: &str, args: &[String]) -> CliResult<String> {
    use tilestore_server::{Client, RemoteValue};
    let mut c = Client::connect(addr).map_err(err)?;
    match (op, args) {
        ("ping", []) => {
            c.ping().map_err(err)?;
            Ok("pong".to_string())
        }
        ("query", [q]) => {
            let mut out = String::new();
            match c.query(q).map_err(err)? {
                RemoteValue::Array {
                    domain,
                    cell_size,
                    cells,
                } => {
                    writeln!(out, "array over {domain} ({} cells)", domain.cells())
                        .expect("string write");
                    if domain.cells() <= 64 && cell_size <= 8 {
                        for (i, chunk) in cells.chunks(cell_size).enumerate() {
                            if i > 0 {
                                out.push(' ');
                            }
                            for b in chunk {
                                write!(out, "{b:02x}").expect("string write");
                            }
                        }
                    }
                }
                RemoteValue::Number(n) => write!(out, "{n}").expect("string write"),
                RemoteValue::Count(n) => write!(out, "{n} cells").expect("string write"),
                RemoteValue::Bool(b) => write!(out, "{b}").expect("string write"),
            }
            let mut out = out.trim_end().to_string();
            write!(out, "\n[request {}]", c.last_request_id()).expect("string write");
            Ok(out)
        }
        ("explain", args @ ([_] | [_, _])) => {
            let analyze = match args {
                [_, flag] if flag.as_str() == "--analyze" => true,
                [_] => false,
                _ => return Err("explain <rasql> [--analyze]".to_string()),
            };
            let report = c.explain(&args[0], analyze).map_err(err)?;
            let mut out = report.to_string_pretty();
            write!(out, "\n[request {}]", c.last_request_id()).expect("string write");
            Ok(out)
        }
        ("metrics", []) => Ok(c.metrics().map_err(err)?.to_string_pretty()),
        ("health", []) => {
            let report = c.health().map_err(err)?;
            let ok = report.get("status").and_then(|j| j.as_str()) == Some("ok");
            if ok {
                Ok(report.to_string_pretty())
            } else {
                Err(report.to_string_pretty())
            }
        }
        ("top", args @ ([] | [_])) => {
            let limit = match args {
                [n] => n.parse().map_err(|e| format!("bad limit: {e}"))?,
                _ => 16,
            };
            let slow = c.slow_queries(limit).map_err(err)?;
            let mut out = String::new();
            writeln!(
                out,
                "slow queries (threshold {} ms, {} recorded), newest first:",
                slow.get("threshold_ms")
                    .and_then(|j| j.as_u64())
                    .unwrap_or(0),
                slow.get("count").and_then(|j| j.as_u64()).unwrap_or(0)
            )
            .expect("string write");
            let entries = match slow.get("entries") {
                Some(tilestore_testkit::Json::Array(items)) => items.as_slice(),
                _ => &[],
            };
            for e in entries {
                let get = |k: &str| e.get(k).and_then(|j| j.as_u64()).unwrap_or(0);
                writeln!(
                    out,
                    "  req {:>6}  {:>9.3} ms  epoch {:>3}  {} tiles  {}",
                    get("request_id"),
                    get("elapsed_ns") as f64 / 1e6,
                    get("epoch"),
                    e.get("stats")
                        .and_then(|s| s.get("tiles_read"))
                        .and_then(|j| j.as_u64())
                        .unwrap_or(0),
                    e.get("statement").and_then(|j| j.as_str()).unwrap_or("?")
                )
                .expect("string write");
            }
            Ok(out.trim_end().to_string())
        }
        ("load", [name, domain, pattern]) => {
            let info = c.info(name).map_err(err)?;
            let cell_size = info
                .get("cell_size")
                .and_then(|j| j.as_u64())
                .ok_or("server info lacks cell_size")? as usize;
            let domain: Domain = domain.parse().map_err(err)?;
            let array = synthesize(&domain, cell_size, pattern)?;
            let stats = c.insert(name, &array).map_err(err)?;
            Ok(format!(
                "loaded {domain} as {} tiles",
                stats
                    .get("tiles_created")
                    .and_then(|j| j.as_u64())
                    .unwrap_or(0)
            ))
        }
        ("retile", [name, scheme]) => {
            let stats = c.retile(name, scheme).map_err(err)?;
            Ok(format!(
                "retiled {name:?}: {} -> {} tiles",
                stats
                    .get("tiles_before")
                    .and_then(|j| j.as_u64())
                    .unwrap_or(0),
                stats
                    .get("tiles_after")
                    .and_then(|j| j.as_u64())
                    .unwrap_or(0)
            ))
        }
        ("info", [name]) => Ok(c.info(name).map_err(err)?.to_string_pretty()),
        ("stats", []) => Ok(c.stats().map_err(err)?.to_string_pretty()),
        ("fsck", []) => {
            let report = c.fsck().map_err(err)?;
            let clean = report.get("clean").and_then(|j| j.as_bool()) == Some(true);
            if clean {
                Ok(report.to_string_pretty())
            } else {
                Err(report.to_string_pretty())
            }
        }
        ("cluster", []) => {
            // Served by `serve_cluster` endpoints; single servers have no
            // cluster section in their health report.
            let report = c.health().map_err(err)?;
            match report.get("cluster") {
                Some(cluster) => Ok(cluster.to_string_pretty()),
                None => Err("server is not a cluster coordinator".to_string()),
            }
        }
        ("shutdown", []) => {
            c.shutdown_server().map_err(err)?;
            Ok("server shutting down".to_string())
        }
        _ => Err(format!(
            "unknown client op {op:?} (or wrong arguments); ops: ping, query <rasql>, \
             explain <rasql> [--analyze], load <name> <domain> <pattern>, \
             retile <name> <scheme>, info <name>, stats, metrics, health, \
             cluster, top [limit], fsck, shutdown"
        )),
    }
}

// ---------------------------------------------------------------------------
// Cluster commands: a database directory containing `cluster.json` is a
// sharded store — N ordinary shard databases under `shard-<k>/` plus the
// shard map. All data commands route through a local Coordinator so the
// same CLI verbs work unchanged.
// ---------------------------------------------------------------------------

use std::sync::Arc;

use tilestore_cluster::{
    serve_cluster, ClusterConfig, ClusterManifest, ClusterStatement, Coordinator, RemoteShard,
    ShardBackend, ShardMap,
};
use tilestore_engine::SharedDatabase;
use tilestore_exec::ThreadPool;

/// Whether `dir` is a cluster root (holds a `cluster.json` manifest).
pub fn is_cluster(dir: &Path) -> bool {
    ClusterManifest::exists(dir)
}

/// `cluster-init <shards> [axis] [slab]` — create a cluster root: a shard
/// map cutting `axis` into even slabs of `slab` cells starting at 0, plus
/// one fresh shard database per sub-domain.
pub fn cluster_init(dir: &Path, shards: usize, axis: usize, slab: u64) -> CliResult<String> {
    if is_cluster(dir) {
        return Err(format!("{} is already a cluster root", dir.display()));
    }
    std::fs::create_dir_all(dir).map_err(err)?;
    let map = ShardMap::even(axis, shards, 0, slab).map_err(err)?;
    for k in 0..shards {
        let shard_dir = ClusterManifest::shard_dir(dir, k);
        let db = Database::create_dir(&shard_dir).map_err(err)?;
        db.save(&shard_dir).map_err(err)?;
    }
    let manifest = ClusterManifest { map };
    manifest.save(dir).map_err(err)?;
    Ok(format!(
        "created cluster at {} ({shards} shards, axis {axis}, slab {slab})",
        dir.display()
    ))
}

/// Opens a cluster root as a coordinator over local shard databases.
pub fn open_cluster(dir: &Path) -> CliResult<Coordinator<CachedFileStore>> {
    let manifest = ClusterManifest::load(dir).map_err(err)?;
    let mut backends = Vec::with_capacity(manifest.map.shards());
    for k in 0..manifest.map.shards() {
        let shard_dir = ClusterManifest::shard_dir(dir, k);
        let db = Database::open_dir(&shard_dir)
            .map_err(|e| format!("shard {k} ({}): {e}", shard_dir.display()))?;
        backends.push(ShardBackend::Local(SharedDatabase::new(db)));
    }
    Coordinator::new(manifest.map, backends, Arc::new(ThreadPool::new(2))).map_err(err)
}

/// `create` on a cluster root: broadcast to every shard.
pub fn cluster_create(
    coord: &Coordinator<CachedFileStore>,
    name: &str,
    cell: &str,
    dim: usize,
    scheme: Option<&str>,
) -> CliResult<String> {
    let cell = parse_cell_type(cell)?;
    let scheme = match scheme {
        Some(spec) => parse_scheme(spec, dim)?,
        None => Scheme::default_for(dim),
    };
    let def = DefDomain::unlimited(dim).map_err(err)?;
    coord
        .create_object(name, MddType::new(cell, def), scheme)
        .map_err(err)?;
    Ok(format!(
        "created object {name:?} ({dim}-D) on {} shards",
        coord.shards()
    ))
}

/// `load` on a cluster root: each shard receives its clip of the array.
pub fn cluster_load(
    coord: &Coordinator<CachedFileStore>,
    name: &str,
    domain: &str,
    pattern: &str,
) -> CliResult<String> {
    let domain: Domain = domain.parse().map_err(err)?;
    let info = coord.info(name).map_err(err)?;
    let cell_size = info
        .get("cell_size")
        .and_then(|j| j.as_u64())
        .ok_or("cluster info lacks cell_size")? as usize;
    let array = synthesize(&domain, cell_size, pattern)?;
    let write = coord.insert(name, &array).map_err(err)?;
    let merged = write.merged();
    Ok(format!(
        "loaded {} across {} shard(s) as {} tiles",
        domain,
        write.per_shard.len(),
        merged.tiles_created
    ))
}

/// `query` on a cluster root: scatter, gather, and render with the merged
/// counters and the pinned epoch set.
pub fn cluster_query(coord: &Coordinator<CachedFileStore>, text: &str) -> CliResult<String> {
    match coord.execute(text).map_err(err)? {
        ClusterStatement::Explain(report) => Ok(report.render()),
        ClusterStatement::Value(v) => {
            let mut out = String::new();
            match &v.value {
                Value::Array(a) => {
                    writeln!(
                        out,
                        "array over {} ({} cells)",
                        a.domain(),
                        a.domain().cells()
                    )
                    .expect("string write");
                    if a.domain().cells() <= 64 && a.cell_size() <= 8 {
                        writeln!(out, "{}", render_small(a)).expect("string write");
                    }
                }
                Value::Number(n) => writeln!(out, "{n}").expect("string write"),
                Value::Count(c) => writeln!(out, "{c} cells").expect("string write"),
                Value::Bool(b) => writeln!(out, "{b}").expect("string write"),
            }
            let epochs: Vec<String> = v
                .epochs
                .iter()
                .map(|e| format!("{}@{}", e.shard, e.epoch))
                .collect();
            write!(
                out,
                "[epochs {}; {} tiles, {} pruned, {} bytes read]",
                epochs.join(" "),
                v.stats.tiles_read,
                v.stats.tiles_pruned,
                v.stats.io.bytes_read
            )
            .expect("string write");
            Ok(out)
        }
    }
}

/// `explain` on a cluster root (wraps bare queries like the local command).
pub fn cluster_explain(coord: &Coordinator<CachedFileStore>, text: &str) -> CliResult<String> {
    let stmt = normalize_explain(text);
    match coord.execute(&stmt).map_err(err)? {
        ClusterStatement::Explain(report) => Ok(report.render()),
        ClusterStatement::Value(..) => {
            Err("statement executed instead of explaining; prefix it with EXPLAIN".to_string())
        }
    }
}

/// `info` / `info <name>` on a cluster root.
pub fn cluster_info(coord: &Coordinator<CachedFileStore>, name: Option<&str>) -> CliResult<String> {
    match name {
        Some(name) => Ok(coord.info(name).map_err(err)?.to_string_pretty()),
        None => {
            let mut out = String::new();
            writeln!(
                out,
                "objects: {}",
                coord.object_names().map_err(err)?.join(", ")
            )
            .expect("string write");
            write!(out, "{}", coord.status().to_string_pretty()).expect("string write");
            Ok(out)
        }
    }
}

/// `retile <name> <spec>` on a cluster root: same grammar as the
/// single-node command; every shard re-tiles (or defragments) its
/// sub-domain under one write gate. `--from-log` surfaces the
/// coordinator's typed unsupported error.
pub fn cluster_retile(
    coord: &Coordinator<CachedFileStore>,
    name: &str,
    spec: &str,
) -> CliResult<String> {
    let defrag = matches!(
        tilestore_tiling::parse_retile_spec(spec),
        Ok(RetileSpec::Defrag { .. })
    );
    let write = coord.retile(name, spec).map_err(err)?;
    let merged = write.merged();
    if defrag {
        return Ok(format!(
            "defragmented on {} shard(s): {} tiles, {} bytes rewritten",
            write.per_shard.len(),
            merged.tiles_after,
            merged.bytes_rewritten
        ));
    }
    Ok(format!(
        "retiled on {} shard(s): {} -> {} tiles",
        write.per_shard.len(),
        merged.tiles_before,
        merged.tiles_after
    ))
}

/// `serve <addr>` on a cluster root: scatter-gather serving over the
/// ordinary wire protocol, backed by the local shard databases.
pub fn cluster_serve(dir: &Path, addr: &str) -> CliResult<String> {
    use std::io::Write as _;
    let coord = open_cluster(dir)?;
    let handle = serve_cluster(
        Arc::new(coord),
        Some(dir.to_path_buf()),
        addr,
        ClusterConfig::default(),
    )
    .map_err(err)?;
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.join();
    Ok("cluster server stopped".to_string())
}

/// `cluster-serve <addr> <shard-addr,...>` — coordinator over REMOTE shard
/// servers: the manifest in `dir` supplies the shard map, each listed
/// address is an ordinary `tilestore serve` instance holding that shard's
/// sub-domain.
pub fn cluster_serve_remote(dir: &Path, addr: &str, shard_addrs: &str) -> CliResult<String> {
    use std::io::Write as _;
    let manifest = ClusterManifest::load(dir).map_err(err)?;
    let addrs: Vec<&str> = shard_addrs.split(',').filter(|a| !a.is_empty()).collect();
    if addrs.len() != manifest.map.shards() {
        return Err(format!(
            "map has {} shards but {} address(es) given",
            manifest.map.shards(),
            addrs.len()
        ));
    }
    let backends: Vec<ShardBackend<CachedFileStore>> = addrs
        .iter()
        .map(|a| ShardBackend::Remote(RemoteShard::new((*a).to_string())))
        .collect();
    let coord =
        Coordinator::new(manifest.map, backends, Arc::new(ThreadPool::new(2))).map_err(err)?;
    let handle =
        serve_cluster(Arc::new(coord), None, addr, ClusterConfig::default()).map_err(err)?;
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.join();
    Ok("cluster server stopped".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (tilestore_testkit::TempDir, Database<CachedFileStore>) {
        let dir = tilestore_testkit::tempdir().unwrap();
        init(dir.path()).unwrap();
        let db = open(dir.path()).unwrap();
        (dir, db)
    }

    #[test]
    fn init_create_load_query_cycle() {
        let (dir, db) = fresh();
        create(&db, "img", "u8", 2, Some("regular:4")).unwrap();
        load(&db, "img", "[0:63,0:63]", "gradient").unwrap();
        let out = query(&db, "SELECT img[0:7,0:7] FROM img").unwrap();
        assert!(out.contains("array over [0:7,0:7]"), "{out}");
        let out = query(&db, "SELECT count_cells(img) FROM img").unwrap();
        assert!(out.contains("cells"), "{out}");
        db.save(dir.path()).unwrap();
        // Reopen and query again.
        let db2 = open(dir.path()).unwrap();
        let out = query(&db2, "SELECT max_cells(img) FROM img").unwrap();
        assert!(out.contains('\n'), "{out}");
    }

    #[test]
    fn query_where_clause_reports_pruned_tiles() {
        let (_dir, db) = fresh();
        create(&db, "img", "u8", 2, Some("regular:1")).unwrap();
        load(&db, "img", "[0:63,0:63]", "gradient").unwrap();
        // Gradient u8 cells never exceed 250, so every tile is pruned by
        // its synopsis and no cell survives the mask.
        let out = query(&db, "SELECT count_cells(img) FROM img WHERE img > 250").unwrap();
        assert!(out.starts_with("0 cells"), "{out}");
        assert!(out.contains("pruned"), "{out}");
        assert!(!out.contains(" 0 pruned"), "{out}");
        // The trailer also appears (with zero pruned) on plain queries.
        let out = query(&db, "SELECT count_cells(img) FROM img").unwrap();
        assert!(out.contains(" pruned,"), "{out}");
    }

    #[test]
    fn explain_command_renders_tile_decisions() {
        let (_dir, db) = fresh();
        create(&db, "img", "u8", 2, Some("regular:1")).unwrap();
        load(&db, "img", "[0:63,0:63]", "gradient").unwrap();
        // A bare query is wrapped as EXPLAIN; gradient u8 never exceeds
        // 250, so every tile is pruned by its synopsis extrema.
        let out = explain(&db, "SELECT count_cells(img) FROM img WHERE img > 250").unwrap();
        assert!(out.contains("prune"), "{out}");
        assert!(out.contains("0 fetched"), "{out}");
        assert!(out.contains("tile"), "{out}");
        // A full EXPLAIN ANALYZE statement runs as written and reports the
        // measured counters alongside the plan.
        let out = explain(
            &db,
            "EXPLAIN ANALYZE SELECT count_cells(img) FROM img WHERE img > 250",
        )
        .unwrap();
        assert!(out.contains("analyze:"), "{out}");
        // Induced expressions carry no tile plan.
        assert!(explain(&db, "SELECT img + 1 FROM img").is_err());
    }

    #[test]
    fn info_renders_object_details() {
        let (_dir, db) = fresh();
        create(&db, "vol", "f32", 3, None).unwrap();
        load(&db, "vol", "[0:9,0:9,0:9]", "random:7").unwrap();
        let text = info(&db, Some("vol")).unwrap();
        assert!(text.contains("cell type:     f32"), "{text}");
        assert!(text.contains("current:       [0:9,0:9,0:9]"), "{text}");
        let listing = info(&db, None).unwrap();
        assert!(listing.contains("vol"), "{listing}");
    }

    #[test]
    fn scheme_parsing() {
        assert!(parse_scheme("regular:64", 2).is_ok());
        assert!(parse_scheme("single", 3).is_ok());
        assert!(parse_scheme("aligned:[*,1]:32", 2).is_ok());
        let s = parse_scheme("directional:0=1/31/60:64", 2).unwrap();
        assert!(matches!(s, Scheme::Directional(_)));
        assert!(parse_scheme("bogus", 2).is_err());
        assert!(parse_scheme("aligned", 2).is_err());
        assert!(parse_scheme("directional:0-1", 2).is_err());
        assert!(parse_scheme("regular:x", 2).is_err());
    }

    #[test]
    fn compress_and_retile_commands() {
        let (_dir, db) = fresh();
        create(&db, "m", "u32", 2, Some("regular:8")).unwrap();
        load(&db, "m", "[0:63,0:63]", "zero").unwrap();
        let msg = compress(&db, "m", "selective").unwrap();
        assert!(msg.contains("->"), "{msg}");
        let phys = db.object_physical_bytes("m").unwrap();
        assert!(phys < 1024, "all-zero object compresses tiny: {phys}");
        let msg = retile(&db, "m", "regular:16").unwrap();
        assert!(msg.contains("tiles"), "{msg}");
        assert!(compress(&db, "m", "lzma").is_err());
    }

    #[test]
    fn delete_command_shrinks_object() {
        let (_dir, db) = fresh();
        create(&db, "m", "u16", 2, Some("regular:2")).unwrap();
        load(&db, "m", "[0:31,0:31]", "gradient").unwrap();
        let msg = delete(&db, "m", "[16:31,0:31]").unwrap();
        assert!(msg.contains("removed 512 cells"), "{msg}");
        let text = info(&db, Some("m")).unwrap();
        assert!(text.contains("current:       [0:15,0:31]"), "{text}");
        assert!(delete(&db, "m", "not-a-domain").is_err());
    }

    #[test]
    fn drop_and_errors() {
        let (_dir, db) = fresh();
        create(&db, "a", "u8", 1, None).unwrap();
        drop_object(&db, "a").unwrap();
        assert!(drop_object(&db, "a").is_err());
        assert!(create(&db, "bad", "u128", 1, None).is_err());
        assert!(load(&db, "missing", "[0:1]", "zero").is_err());
        assert!(query(&db, "SELECT nope FROM nope").is_err());
    }

    #[test]
    fn stats_command_reports_io_and_metrics() {
        let (_dir, db) = fresh();
        create(&db, "m", "u8", 2, Some("regular:4")).unwrap();
        load(&db, "m", "[0:31,0:31]", "checker").unwrap();
        query(&db, "SELECT m[0:7,0:7] FROM m").unwrap();
        let out = stats(&db).unwrap();
        assert!(out.contains("m: "), "{out}");
        assert!(out.contains("session I/O:"), "{out}");
        assert!(out.contains("access log: "), "{out}");
        assert!(out.contains("engine.query_latency_ns"), "{out}");
        assert!(out.contains("cache:"), "{out}");
    }

    #[test]
    fn trace_command_emits_jsonl_spans() {
        let (_dir, db) = fresh();
        create(&db, "t", "u8", 2, Some("regular:4")).unwrap();
        load(&db, "t", "[0:15,0:15]", "gradient").unwrap();
        let out = trace(&db, "SELECT t[0:3,0:3] FROM t").unwrap();
        // The query span and at least one blob read must be present
        // (other tests may interleave extra global events; only containment
        // is asserted).
        assert!(out.contains("\"name\":\"query\""), "{out}");
        assert!(out.contains("span_start"), "{out}");
        assert!(out.contains("span_end"), "{out}");
        assert!(out.contains("blob_read"), "{out}");
        assert!(out.contains("tiles,"), "{out}");
        assert!(trace(&db, "SELECT nope FROM nope").is_err());
    }

    #[test]
    fn retile_from_log_command() {
        let (_dir, db) = fresh();
        create(&db, "m", "u32", 2, Some("regular:16")).unwrap();
        load(&db, "m", "[0:63,0:63]", "gradient").unwrap();
        for _ in 0..4 {
            query(&db, "SELECT m[0:7,0:7] FROM m").unwrap();
        }
        let msg = retile(&db, "m", "--from-log:0:2:64").unwrap();
        assert!(msg.contains("from access log"), "{msg}");
        // Defaults apply when thresholds are omitted.
        query(&db, "SELECT m[8:15,8:15] FROM m").unwrap();
        let msg = retile(&db, "m", "--from-log").unwrap();
        assert!(msg.contains("tiles"), "{msg}");
        assert!(retile(&db, "m", "--from-log:x").is_err());
    }

    #[test]
    fn fsck_reports_clean_and_dirty_directories() {
        let (dir, db) = fresh();
        create(&db, "m", "u8", 2, Some("regular:4")).unwrap();
        load(&db, "m", "[0:15,0:15]", "gradient").unwrap();
        db.save(dir.path()).unwrap();
        let out = fsck(dir.path()).unwrap();
        assert!(out.contains("clean"), "{out}");
        // A leftover staging file from an interrupted commit is flagged.
        std::fs::write(
            dir.path().join(tilestore_engine::CATALOG_TMP_FILE),
            b"{garbage",
        )
        .unwrap();
        let msg = fsck(dir.path()).unwrap_err();
        assert!(msg.contains("catalog.json.tmp"), "{msg}");
        assert!(fsck(&dir.path().join("nope")).is_err());
    }

    #[test]
    fn client_command_round_trip() {
        let (dir, db) = fresh();
        create(&db, "img", "u8", 2, Some("regular:4")).unwrap();
        load(&db, "img", "[0:15,0:15]", "gradient").unwrap();
        db.save(dir.path()).unwrap();
        let handle = tilestore_server::serve(
            tilestore_engine::SharedDatabase::new(db),
            Some(dir.path().to_path_buf()),
            "127.0.0.1:0",
            tilestore_server::ServerConfig::default(),
        )
        .unwrap();
        let addr = handle.addr().to_string();
        assert_eq!(client(&addr, "ping", &[]).unwrap(), "pong");
        let out = client(
            &addr,
            "query",
            &["SELECT count_cells(img) FROM img".to_string()],
        )
        .unwrap();
        assert!(out.contains("cells"), "{out}");
        let out = client(
            &addr,
            "load",
            &["img".into(), "[16:31,0:15]".into(), "gradient".into()],
        )
        .unwrap();
        assert!(out.contains("loaded [16:31,0:15]"), "{out}");
        let out = client(&addr, "retile", &["img".into(), "regular:8".into()]).unwrap();
        assert!(out.contains("tiles"), "{out}");
        let out = client(&addr, "info", &["img".into()]).unwrap();
        assert!(out.contains("covered_cells"), "{out}");
        let out = client(&addr, "stats", &[]).unwrap();
        assert!(out.contains("objects"), "{out}");
        let out = client(&addr, "fsck", &[]).unwrap();
        assert!(out.contains("clean"), "{out}");
        let out = client(
            &addr,
            "explain",
            &["SELECT count_cells(img) FROM img WHERE img > 250".to_string()],
        )
        .unwrap();
        assert!(out.contains("plan"), "{out}");
        assert!(out.contains("[request "), "{out}");
        let out = client(
            &addr,
            "explain",
            &[
                "SELECT count_cells(img) FROM img".to_string(),
                "--analyze".to_string(),
            ],
        )
        .unwrap();
        assert!(out.contains("analyze"), "{out}");
        let out = client(&addr, "metrics", &[]).unwrap();
        assert!(out.contains("engine.queries"), "{out}");
        let out = client(&addr, "health", &[]).unwrap();
        assert!(out.contains("\"ok\""), "{out}");
        let out = client(&addr, "top", &["4".to_string()]).unwrap();
        assert!(out.contains("slow queries"), "{out}");
        assert!(client(&addr, "bogus", &[]).is_err());
        client(&addr, "shutdown", &[]).unwrap();
        handle.join();
        assert!(tilestore_engine::fsck(dir.path()).unwrap().is_clean());
    }

    #[test]
    fn synthesize_patterns() {
        let dom: Domain = "[0:9]".parse().unwrap();
        assert!(synthesize(&dom, 2, "zero")
            .unwrap()
            .bytes()
            .iter()
            .all(|&b| b == 0));
        let g = synthesize(&dom, 2, "gradient").unwrap();
        assert_ne!(g.bytes()[0], g.bytes()[2]);
        let r1 = synthesize(&dom, 1, "random:9").unwrap();
        let r2 = synthesize(&dom, 1, "random:9").unwrap();
        assert_eq!(r1, r2);
        assert!(synthesize(&dom, 1, "perlin").is_err());
    }
}
