//! `tilestore` — command-line interface for tilestore databases.
//!
//! ```text
//! tilestore <dbdir> init
//! tilestore <dbdir> create <name> <celltype> <dim> [scheme]
//! tilestore <dbdir> load <name> <domain> <pattern>
//! tilestore <dbdir> query "SELECT obj[0:9,0:9] FROM obj"
//! tilestore <dbdir> info [name]
//! tilestore <dbdir> stats
//! tilestore <dbdir> trace "SELECT obj[0:9,0:9] FROM obj"
//! tilestore <dbdir> compress <name> <none|selective>
//! tilestore <dbdir> retile <name> <scheme | --from-log[:<dist>:<freq>:<maxKB>] | --defrag[:<budgetKB>]>
//! tilestore <dbdir> drop <name>
//! tilestore <dbdir> fsck
//! tilestore <dbdir> repl
//! tilestore <dbdir> serve 127.0.0.1:7901
//! tilestore client 127.0.0.1:7901 query "SELECT obj[0:9,0:9] FROM obj"
//! ```
//!
//! Schemes: `regular:<maxKB>`, `aligned:<config>:<maxKB>` (e.g.
//! `aligned:[*,1]:64`), `directional:<axis>=p1/p2/..[,..]:<maxKB>`,
//! `single`. Patterns: `zero`, `gradient`, `checker`, `random:<seed>`.

mod commands;

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use commands::CliResult;

const USAGE: &str = "usage: tilestore <dbdir> <command> [args...]
commands:
  init                                   create a new database directory
  create <name> <celltype> <dim> [scheme]
  load <name> <domain> <pattern>         synthesize and insert data
  query <rasql>                          run a query
  explain <rasql>                        per-tile planner decisions (EXPLAIN ANALYZE executes too)
  info [name]                            database / object details
  stats                                  I/O counters, tile counts, metric histograms
  trace <rasql>                          run a query with tracing, dump JSONL spans
  compress <name> <none|selective>       set policy and rewrite tiles
  retile <name> <scheme>                 re-tile an object
  retile <name> --from-log[:d:f:kb]      statistic re-tile from the access log
  retile <name> --defrag[:budgetKB]      rewrite tile BLOBs onto contiguous pages in
                                         Z-order (budget paces the rewrite in steps)
  delete <name> <domain>                 remove a region's cells
  drop <name>                            remove an object
  fsck                                   audit catalog/page-file consistency
  repl                                   interactive query shell
  serve <addr> [slow-ms]                 serve the database over TCP (e.g. 127.0.0.1:7901);
                                         slow-ms sets the slow-query-log threshold (0 = all)
cluster commands (a <dbdir> holding cluster.json routes the verbs above
through a scatter-gather coordinator over its shard-<k>/ databases):
  cluster-init <shards> [axis] [slab]    create a sharded store: shard map +
                                         one shard database per sub-domain
  serve <addr>                           serve the whole cluster (local shards)
  cluster-serve <addr> <a0,a1,...>       coordinator over remote shard servers
                                         (each a plain `tilestore ... serve`)
or, without a <dbdir>:
  tilestore client <addr> <op> [args...] talk to a serve instance
    ops: ping | query <rasql> | explain <rasql> [--analyze]
         | load <name> <domain> <pattern> | retile <name> <spec>
         | info <name> | stats | metrics | health | cluster
         | top [limit] | fsck | shutdown";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            if !output.is_empty() {
                // A downstream consumer (`head`, `grep -q`) may close the
                // pipe before the whole output is written; that is a normal
                // exit for a filter-style CLI, not an error.
                let mut stdout = std::io::stdout().lock();
                if writeln!(stdout, "{output}").is_err() {
                    std::process::exit(0);
                }
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> CliResult<String> {
    // `client` takes a server address, not a database directory.
    if let Some(("client", rest)) = args.split_first().map(|(c, r)| (c.as_str(), r)) {
        return match rest {
            [addr, op, op_args @ ..] => commands::client(addr, op, op_args),
            _ => Err("client <addr> <op> [args...]".to_string()),
        };
    }
    let (dir, rest) = match args.split_first() {
        Some((dir, rest)) if !rest.is_empty() => (PathBuf::from(dir), rest),
        _ => return Err(USAGE.to_string()),
    };
    let command = rest[0].as_str();
    let args = &rest[1..];
    if command == "cluster-init" {
        let (shards, axis, slab) = match args {
            [n] => (n, None, None),
            [n, a] => (n, Some(a), None),
            [n, a, s] => (n, Some(a), Some(s)),
            _ => return Err("cluster-init <shards> [axis] [slab]".to_string()),
        };
        let shards: usize = shards
            .parse()
            .map_err(|e| format!("bad shard count: {e}"))?;
        let axis: usize = axis
            .map_or(Ok(0), |a| a.parse())
            .map_err(|e| format!("bad axis: {e}"))?;
        let slab: u64 = slab
            .map_or(Ok(64), |s| s.parse())
            .map_err(|e| format!("bad slab: {e}"))?;
        return commands::cluster_init(&dir, shards, axis, slab);
    }
    // A directory holding a cluster manifest routes data commands through
    // the scatter-gather coordinator; the verbs stay identical.
    if commands::is_cluster(&dir) {
        return run_cluster(&dir, command, args);
    }
    match command {
        "init" => commands::init(&dir),
        "create" => {
            let (name, cell, dim) = match args {
                [n, c, d, ..] => (n.as_str(), c.as_str(), d),
                _ => return Err("create <name> <celltype> <dim> [scheme]".to_string()),
            };
            let dim: usize = dim.parse().map_err(|e| format!("bad dim: {e}"))?;
            with_db(&dir, |db| {
                commands::create(db, name, cell, dim, args.get(3).map(String::as_str))
            })
        }
        "load" => match args {
            [name, domain, pattern] => {
                with_db(&dir, |db| commands::load(db, name, domain, pattern))
            }
            _ => Err("load <name> <domain> <pattern>".to_string()),
        },
        "query" => match args {
            [text] => {
                let db = commands::open(&dir)?;
                commands::query(&db, text)
            }
            _ => Err("query <rasql>".to_string()),
        },
        "explain" => match args {
            [text] => {
                let db = commands::open(&dir)?;
                commands::explain(&db, text)
            }
            _ => Err("explain <rasql>".to_string()),
        },
        "info" => {
            let db = commands::open(&dir)?;
            commands::info(&db, args.first().map(String::as_str))
        }
        "stats" => {
            let db = commands::open(&dir)?;
            commands::stats(&db)
        }
        "trace" => match args {
            [text] => {
                let db = commands::open(&dir)?;
                commands::trace(&db, text)
            }
            _ => Err("trace <rasql>".to_string()),
        },
        "compress" => match args {
            [name, policy] => with_db(&dir, |db| commands::compress(db, name, policy)),
            _ => Err("compress <name> <none|selective>".to_string()),
        },
        "retile" => match args {
            [name, spec] => with_db(&dir, |db| commands::retile(db, name, spec)),
            _ => Err(format!("retile <name> {}", tilestore_tiling::RETILE_USAGE)),
        },
        "delete" => match args {
            [name, domain] => with_db(&dir, |db| commands::delete(db, name, domain)),
            _ => Err("delete <name> <domain>".to_string()),
        },
        "drop" => match args {
            [name] => with_db(&dir, |db| commands::drop_object(db, name)),
            _ => Err("drop <name>".to_string()),
        },
        "fsck" => commands::fsck(&dir),
        "serve" => match args {
            [addr] => commands::serve(&dir, addr, None),
            [addr, slow] => {
                let ms = slow.parse().map_err(|e| format!("bad slow-ms: {e}"))?;
                commands::serve(&dir, addr, Some(ms))
            }
            _ => Err("serve <addr> [slow-ms]".to_string()),
        },
        "repl" => repl(&dir),
        _ => Err(format!("unknown command {command:?}\n{USAGE}")),
    }
}

/// Command dispatch for a cluster root (a directory with `cluster.json`).
fn run_cluster(dir: &Path, command: &str, args: &[String]) -> CliResult<String> {
    match command {
        "create" => {
            let (name, cell, dim) = match args {
                [n, c, d, ..] => (n.as_str(), c.as_str(), d),
                _ => return Err("create <name> <celltype> <dim> [scheme]".to_string()),
            };
            let dim: usize = dim.parse().map_err(|e| format!("bad dim: {e}"))?;
            with_cluster(dir, |coord| {
                commands::cluster_create(coord, name, cell, dim, args.get(3).map(String::as_str))
            })
        }
        "load" => match args {
            [name, domain, pattern] => with_cluster(dir, |coord| {
                commands::cluster_load(coord, name, domain, pattern)
            }),
            _ => Err("load <name> <domain> <pattern>".to_string()),
        },
        "query" => match args {
            [text] => {
                let coord = commands::open_cluster(dir)?;
                commands::cluster_query(&coord, text)
            }
            _ => Err("query <rasql>".to_string()),
        },
        "explain" => match args {
            [text] => {
                let coord = commands::open_cluster(dir)?;
                commands::cluster_explain(&coord, text)
            }
            _ => Err("explain <rasql>".to_string()),
        },
        "info" => {
            let coord = commands::open_cluster(dir)?;
            commands::cluster_info(&coord, args.first().map(String::as_str))
        }
        "retile" => match args {
            [name, spec] => with_cluster(dir, |coord| commands::cluster_retile(coord, name, spec)),
            _ => Err(format!("retile <name> {}", tilestore_tiling::RETILE_USAGE)),
        },
        "serve" => match args {
            [addr] => commands::cluster_serve(dir, addr),
            _ => Err("serve <addr>".to_string()),
        },
        "cluster-serve" => match args {
            [addr, shard_addrs] => commands::cluster_serve_remote(dir, addr, shard_addrs),
            _ => Err("cluster-serve <addr> <shard-addr,shard-addr,...>".to_string()),
        },
        other => Err(format!(
            "command {other:?} is not available on a cluster root \
             (supported: create, load, query, explain, info, retile, serve, cluster-serve)"
        )),
    }
}

/// Opens the cluster, runs `f`, and commits every shard durably.
fn with_cluster<F>(dir: &Path, f: F) -> CliResult<String>
where
    F: FnOnce(
        &tilestore_cluster::Coordinator<tilestore_engine::CachedFileStore>,
    ) -> CliResult<String>,
{
    let coord = commands::open_cluster(dir)?;
    let out = f(&coord)?;
    coord.save_local(dir).map_err(|e| e.to_string())?;
    Ok(out)
}

/// Opens the database, runs `f`, and commits the result durably.
fn with_db<F>(dir: &Path, f: F) -> CliResult<String>
where
    F: FnOnce(&tilestore_engine::Database<tilestore_engine::CachedFileStore>) -> CliResult<String>,
{
    let db = commands::open(dir)?;
    let out = f(&db)?;
    db.save(dir).map_err(|e| e.to_string())?;
    Ok(out)
}

/// Interactive query shell: each line is a RasQL query (or `info`, `exit`).
fn repl(dir: &Path) -> CliResult<String> {
    let db = commands::open(dir)?;
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("tilestore repl — RasQL queries, `info`, `info <name>`, `exit`");
    loop {
        print!("> ");
        stdout.flush().ok();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "exit" | "quit" => break,
            "info" => match commands::info(&db, None) {
                Ok(s) => println!("{s}"),
                Err(e) => eprintln!("error: {e}"),
            },
            _ if line.starts_with("info ") => match commands::info(&db, Some(line[5..].trim())) {
                Ok(s) => println!("{s}"),
                Err(e) => eprintln!("error: {e}"),
            },
            query => match commands::query(&db, query) {
                Ok(s) => println!("{s}"),
                Err(e) => eprintln!("error: {e}"),
            },
        }
    }
    Ok(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn full_command_cycle() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let d = dir.path().to_str().unwrap();
        run(&s(&[d, "init"])).unwrap();
        run(&s(&[d, "create", "img", "u8", "2", "regular:4"])).unwrap();
        run(&s(&[d, "load", "img", "[0:31,0:31]", "gradient"])).unwrap();
        let out = run(&s(&[d, "query", "SELECT count_cells(img) FROM img"])).unwrap();
        assert!(out.contains("cells"), "{out}");
        let out = run(&s(&[
            d,
            "explain",
            "SELECT count_cells(img) FROM img WHERE img > 250",
        ]))
        .unwrap();
        assert!(out.contains("fetched"), "{out}");
        assert!(run(&s(&[d, "explain"])).is_err());
        let out = run(&s(&[d, "info", "img"])).unwrap();
        assert!(out.contains("u8"), "{out}");
        run(&s(&[d, "compress", "img", "selective"])).unwrap();
        run(&s(&[d, "retile", "img", "regular:8"])).unwrap();
        let out = run(&s(&[d, "stats"])).unwrap();
        assert!(out.contains("session I/O:"), "{out}");
        let out = run(&s(&[d, "trace", "SELECT img[0:1,0:1] FROM img"])).unwrap();
        assert!(out.contains("span_start"), "{out}");
        assert!(run(&s(&[d, "trace"])).is_err());
        let out = run(&s(&[d, "retile", "img", "--from-log"])).unwrap();
        assert!(out.contains("from access log"), "{out}");
        // Defrag shares the retile grammar: full rewrite, then a paced one.
        let out = run(&s(&[d, "retile", "img", "--defrag"])).unwrap();
        assert!(out.contains("defragmented"), "{out}");
        let out = run(&s(&[d, "retile", "img", "--defrag:2"])).unwrap();
        assert!(out.contains("defragmented"), "{out}");
        let out = run(&s(&[d, "query", "SELECT img[0:1,0:1] FROM img"])).unwrap();
        assert!(out.contains("array over [0:1,0:1]"), "{out}");
        let out = run(&s(&[d, "fsck"])).unwrap();
        assert!(out.contains("clean"), "{out}");
        run(&s(&[d, "drop", "img"])).unwrap();
        assert!(run(&s(&[d, "info", "img"])).is_err());
    }

    #[test]
    fn cluster_command_cycle() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let root = dir.path().join("cluster");
        let d = root.to_str().unwrap();
        // Two shards split on axis 0 at row 16: [0:15] and [16:...].
        let out = run(&s(&[d, "cluster-init", "2", "0", "16"])).unwrap();
        assert!(out.contains("2 shards"), "{out}");
        // Re-initialising an existing cluster root must fail.
        assert!(run(&s(&[d, "cluster-init", "2"])).is_err());
        run(&s(&[d, "create", "img", "u32", "2", "regular:4"])).unwrap();
        run(&s(&[d, "load", "img", "[0:31,0:31]", "gradient"])).unwrap();
        let out = run(&s(&[d, "query", "SELECT count_cells(img) FROM img"])).unwrap();
        assert!(out.contains("1024 cells"), "{out}");
        assert!(out.contains("epochs"), "{out}");
        // A seam-straddling trim comes back stitched into one slab.
        let out = run(&s(&[d, "query", "SELECT img[14:17, 2:5] FROM img"])).unwrap();
        assert!(out.contains("array over [14:17,2:5]"), "{out}");
        let out = run(&s(&[d, "explain", "SELECT img FROM img"])).unwrap();
        assert!(out.contains("shard 0"), "{out}");
        assert!(out.contains("shard 1"), "{out}");
        let out = run(&s(&[d, "info", "img"])).unwrap();
        assert!(out.contains("[0:31,0:31]"), "{out}");
        let out = run(&s(&[d, "info"])).unwrap();
        assert!(out.contains("img"), "{out}");
        let out = run(&s(&[d, "retile", "img", "regular:8"])).unwrap();
        assert!(out.contains("2 shard(s)"), "{out}");
        // The cluster path shares the retile grammar: defrag works per
        // shard, --from-log is a typed unsupported error.
        let out = run(&s(&[d, "retile", "img", "--defrag"])).unwrap();
        assert!(out.contains("defragmented on 2 shard(s)"), "{out}");
        let e = run(&s(&[d, "retile", "img", "--from-log"])).unwrap_err();
        assert!(e.contains("unsupported in cluster mode"), "{e}");
        let out = run(&s(&[d, "query", "SELECT sum_cells(img) FROM img"])).unwrap();
        assert!(out.contains("epochs"), "{out}");
        // Data commands that bypass the coordinator are rejected on a
        // cluster root.
        assert!(run(&s(&[d, "trace", "SELECT img FROM img"])).is_err());
        assert!(run(&s(&[d, "fsck"])).is_err());
        // The answers survive reopening from disk.
        let out = run(&s(&[
            d,
            "query",
            "SELECT count_cells(img > 100000) FROM img",
        ]))
        .unwrap();
        assert!(out.contains("cells"), "{out}");
    }

    #[test]
    fn usage_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&s(&["/tmp/nope-db"])).is_err());
        let dir = tilestore_testkit::tempdir().unwrap();
        let d = dir.path().to_str().unwrap();
        run(&s(&[d, "init"])).unwrap();
        assert!(run(&s(&[d, "frobnicate"])).is_err());
        assert!(run(&s(&[d, "create", "x"])).is_err());
        assert!(run(&s(&[d, "load", "x"])).is_err());
        // The retile usage string advertises the full shared grammar.
        let e = run(&s(&[d, "retile", "x"])).unwrap_err();
        assert!(e.contains("--defrag"), "{e}");
        assert!(e.contains("--from-log"), "{e}");
    }
}
