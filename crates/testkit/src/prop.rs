//! Minimal property-testing harness with deterministic seeds and greedy
//! input shrinking.
//!
//! A property is a pair of closures: a *generator* drawing an input from a
//! [`Source`] of random choices, and a *predicate* returning `Ok(())` or a
//! failure message. [`check`] runs the property for a configurable number of
//! cases from a seed derived deterministically from the property name (so
//! every run of the suite replays the same inputs), and on failure shrinks
//! the input before reporting.
//!
//! Shrinking works on the recorded *choice tape* rather than on the value:
//! every draw the generator makes is recorded as a `u64`; a failing tape is
//! greedily simplified (blocks deleted, individual choices binary-searched
//! toward zero) and replayed through the generator, keeping any
//! simplification that still fails. Replaying an exhausted tape yields
//! zeros, which the drawing helpers map to the smallest value in range — so
//! shrinking drives inputs toward structurally minimal cases without
//! per-type shrinkers.
//!
//! ```
//! use tilestore_testkit::prop::{check, Source};
//! use tilestore_testkit::prop_assert;
//!
//! check(
//!     "sum_is_commutative",
//!     64,
//!     |s: &mut Source| (s.i64_in(-100, 100), s.i64_in(-100, 100)),
//!     |&(a, b)| {
//!         prop_assert!(a + b == b + a, "{a} + {b} not commutative");
//!         Ok(())
//!     },
//! );
//! ```
//!
//! Set `TILESTORE_PROP_SEED` (decimal or `0x…` hex) to replay a reported
//! failing seed; the harness then runs that seed as the first case.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{splitmix64, Rng};

/// Maximum number of candidate tapes tried while shrinking. Binary-searching
/// one full-width `u64` choice costs ~64 evaluations, so the budget must
/// comfortably cover a few sweeps over a tape of dozens of choices.
const MAX_SHRINK_ITERS: usize = 50_000;

/// A source of random choices that records every draw.
///
/// In *live* mode draws come from a seeded [`Rng`]; in *replay* mode they
/// come from a recorded tape (zero once the tape is exhausted), which is how
/// shrinking re-runs a generator on a simplified history.
pub struct Source {
    rng: Option<Rng>,
    tape: Vec<u64>,
    pos: usize,
    recorded: Vec<u64>,
}

impl Source {
    /// A live source drawing fresh values from `seed`.
    #[must_use]
    pub fn live(seed: u64) -> Self {
        Source {
            rng: Some(Rng::seed_from_u64(seed)),
            tape: Vec::new(),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// A replay source drawing from `tape`, then zeros.
    #[must_use]
    pub fn replay(tape: Vec<u64>) -> Self {
        Source {
            rng: None,
            tape,
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// The draws made so far.
    #[must_use]
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }

    /// The next raw 64-bit choice.
    pub fn next_u64(&mut self) -> u64 {
        let v = if self.pos < self.tape.len() {
            self.tape[self.pos]
        } else {
            match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// A uniform `u64` in `[lo, hi]`. A zero draw maps to `lo`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// A uniform `i64` in `[lo, hi]`. A zero draw maps to `lo`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi.wrapping_sub(lo)) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add((self.next_u64() % (span + 1)) as i64)
    }

    /// A uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        self.u64_in(0, u8::MAX as u64) as u8
    }

    /// A uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        self.u64_in(0, u16::MAX as u64) as u16
    }

    /// A boolean. A zero draw maps to `false`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() % 2 == 1
    }

    /// A uniform `f64` in `[0, 1)`. A zero draw maps to `0.0`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks an index with the given relative weights (the `prop_oneof!`
    /// replacement). A zero draw maps to index 0.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "all weights zero");
        let mut x = self.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w as u64 {
                return i;
            }
            x -= w as u64;
        }
        weights.len() - 1
    }

    /// A vector of `n ∈ [lo, hi]` elements drawn by `f`.
    pub fn vec_of<T>(
        &mut self,
        lo: usize,
        hi: usize,
        mut f: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(lo, hi);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Returns `Err(message)` from the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Returns `Err(message)` from the enclosing property when the operands
/// differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($arg)+),
                a,
                b
            ));
        }
    }};
}

/// Runs `predicate` against `cases` inputs drawn by `generator`, shrinking
/// and reporting on the first failure.
///
/// The base seed is derived from `name` (stable across runs and platforms)
/// unless `TILESTORE_PROP_SEED` is set, in which case that seed runs first.
///
/// # Panics
/// Panics with a report naming the property, the failing seed and the
/// shrunk input when the property fails.
pub fn check<T, G, P>(name: &str, cases: u32, generator: G, predicate: P)
where
    T: Debug,
    G: Fn(&mut Source) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let base_seed = fnv1a(name.as_bytes()) ^ 0x7469_6C65_7374_6F72; // "tilestor"
    let env_seed = std::env::var("TILESTORE_PROP_SEED")
        .ok()
        .and_then(|s| parse_seed(&s));
    let failure = {
        let _quiet = Silence::enter();
        let mut failure = None;
        for case in 0..cases {
            let case_seed = match (case, env_seed) {
                (0, Some(s)) => s,
                _ => {
                    let mut sm = base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    splitmix64(&mut sm)
                }
            };
            let mut source = Source::live(case_seed);
            let input = generator(&mut source);
            if let Err(msg) = run_predicate(&predicate, &input) {
                let tape = source.recorded().to_vec();
                let (shrunk_input, shrunk_msg) = shrink(tape, &generator, &predicate);
                failure = Some(format!(
                    "property '{name}' failed (case {case}, seed {case_seed:#018x})\n\
                     original error: {msg}\n\
                     shrunk input: {shrunk_input:#?}\n\
                     shrunk error: {shrunk_msg}\n\
                     rerun just this input with TILESTORE_PROP_SEED={case_seed:#x}"
                ));
                break;
            }
        }
        failure
    };
    if let Some(report) = failure {
        panic!("{report}");
    }
}

/// Runs the predicate, converting panics into `Err` so shrinking can
/// continue past `unwrap`-style failures.
fn run_predicate<T>(
    predicate: &impl Fn(&T) -> Result<(), String>,
    input: &T,
) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| predicate(input))) {
        Ok(r) => r,
        Err(payload) => Err(format!("panic: {}", panic_message(&*payload))),
    }
}

/// Greedily simplifies a failing choice tape. Returns the shrunk input and
/// its failure message.
fn shrink<T, G, P>(mut tape: Vec<u64>, generator: &G, predicate: &P) -> (T, String)
where
    T: Debug,
    G: Fn(&mut Source) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    // Re-runs the generator + predicate on a candidate tape. `Some` when the
    // property still fails; the returned tape is the canonical recording.
    let eval = |candidate: &[u64]| -> Option<(Vec<u64>, T, String)> {
        let mut source = Source::replay(candidate.to_vec());
        let input = catch_unwind(AssertUnwindSafe(|| generator(&mut source))).ok()?;
        let msg = run_predicate(predicate, &input).err()?;
        Some((source.recorded().to_vec(), input, msg))
    };

    let (mut best_input, mut best_msg) = {
        let (t, input, msg) = eval(&tape).expect("original tape must still fail");
        tape = t;
        (input, msg)
    };

    let mut iters = 0usize;
    let mut improved = true;
    while improved && iters < MAX_SHRINK_ITERS {
        improved = false;

        // Pass 1: drop blocks of choices (shortens collections and removes
        // whole sub-structures). A candidate only counts as progress when
        // its canonical recording is strictly simpler — replay zero-padding
        // can otherwise resurrect deleted choices and stall the sweep.
        for block in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + block <= tape.len() && iters < MAX_SHRINK_ITERS {
                let mut candidate = tape.clone();
                candidate.drain(i..i + block);
                iters += 1;
                match eval(&candidate) {
                    Some((t, input, msg)) if simpler(&t, &tape) => {
                        tape = t;
                        best_input = input;
                        best_msg = msg;
                        improved = true;
                        // keep i: the tape shifted left under us
                    }
                    _ => i += block,
                }
            }
        }

        // Pass 2: binary-search each choice toward zero. Small draws map to
        // small in-range values (the helpers use `lo + draw % span`), so the
        // search converges on a fail/pass boundary — the minimal value the
        // property still rejects, under the usual monotonicity heuristic.
        for i in 0..tape.len() {
            if i >= tape.len() || tape[i] == 0 {
                continue;
            }
            let mut lo = 0u64;
            let mut hi = tape[i];
            while lo < hi && iters < MAX_SHRINK_ITERS {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = tape.clone();
                candidate[i] = mid;
                iters += 1;
                if let Some((t, input, msg)) = eval(&candidate) {
                    if simpler(&t, &tape) {
                        tape = t;
                        best_input = input;
                        best_msg = msg;
                        improved = true;
                    }
                    if i >= tape.len() {
                        break;
                    }
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
        }
    }
    (best_input, best_msg)
}

/// Tape simplicity order: shorter beats longer; at equal length,
/// lexicographically smaller (choices closer to zero) wins.
fn simpler(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    static SILENCED: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Silences the panic hook *for this thread* while properties run, so the
/// panics caught during generation/shrinking don't spam the test output.
/// The hook wrapper is installed once per process and delegates to the
/// original hook for all other threads.
struct Silence;

impl Silence {
    fn enter() -> Self {
        INSTALL_HOOK.call_once(|| {
            let original = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !SILENCED.with(Cell::get) {
                    original(info);
                }
            }));
        });
        SILENCED.with(|f| f.set(true));
        Silence
    }
}

impl Drop for Silence {
    fn drop(&mut self) {
        SILENCED.with(|f| f.set(false));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check(
            "counts_cases",
            64,
            |s| s.u64_in(0, 100),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = catch_unwind(|| {
            check(
                "fails_over_ninety",
                256,
                |s| s.u64_in(0, 1000),
                |&v| {
                    prop_assert!(v <= 90, "{v} exceeds 90");
                    Ok(())
                },
            );
        });
        let msg = panic_message(&*result.unwrap_err());
        assert!(msg.contains("fails_over_ninety"), "{msg}");
        assert!(msg.contains("TILESTORE_PROP_SEED"), "{msg}");
        // Greedy shrinking must reach the boundary: the minimal failing
        // value is 91.
        assert!(msg.contains("shrunk input: 91"), "{msg}");
    }

    #[test]
    fn shrinking_minimizes_collections() {
        let result = catch_unwind(|| {
            check(
                "no_nines",
                256,
                |s| s.vec_of(0, 30, |s| s.u64_in(0, 9)),
                |v| {
                    prop_assert!(!v.contains(&9), "found a nine in {v:?}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(&*result.unwrap_err());
        // The minimal counterexample is the single-element vector [9].
        assert!(
            msg.contains("shrunk input: [\n    9,\n]"),
            "not minimal: {msg}"
        );
    }

    #[test]
    fn replay_source_is_deterministic_and_zero_padded() {
        let mut live = Source::live(42);
        let a = (live.u64_in(5, 10), live.i64_in(-3, 3), live.bool());
        let tape = live.recorded().to_vec();
        let mut replay = Source::replay(tape);
        let b = (replay.u64_in(5, 10), replay.i64_in(-3, 3), replay.bool());
        assert_eq!(a, b);
        // Exhausted tape yields minimal values.
        assert_eq!(replay.u64_in(5, 10), 5);
        assert_eq!(replay.i64_in(-3, 3), -3);
        assert!(!replay.bool());
    }

    #[test]
    fn panicking_predicate_is_caught_and_reported() {
        let result = catch_unwind(|| {
            check(
                "panics_on_big",
                128,
                |s| s.u64_in(0, 100),
                |&v| {
                    assert!(v < 95, "boom at {v}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(&*result.unwrap_err());
        assert!(msg.contains("panic"), "{msg}");
        assert!(msg.contains("shrunk input: 95"), "{msg}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut s = Source::live(9);
        let mut counts = [0u32; 3];
        for _ in 0..6000 {
            counts[s.weighted(&[3, 2, 1])] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
    }
}
