//! A small JSON value model, parser and printer, plus the [`ToJson`] /
//! [`FromJson`] traits used for catalog persistence and benchmark reports.
//!
//! Types serialize by building a [`Json`] value and deserialize by pattern
//! matching on one; there is no derive machinery. Integers are kept exact
//! (`Int`/`UInt` variants) so 64-bit identifiers round-trip without f64
//! precision loss.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Json::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Key order is preserved as written.
    Object(Vec<(String, Json)>),
}

/// Error raised by JSON parsing or [`FromJson`] decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    /// An error with the given message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        JsonError(m.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required key, erroring with the key name when missing.
    ///
    /// # Errors
    /// [`JsonError`] when `self` is not an object or the key is absent.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::msg(format!("missing field {key:?}")))
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64` (accepts `UInt` and non-negative `Int`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` (accepts `Int` and in-range `UInt`).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts every numeric variant).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        // Seeding capacity from the embedded string payloads avoids the
        // doubling-growth copies that otherwise dominate serialization of
        // responses carrying large (e.g. hex tile) strings.
        let mut out = String::with_capacity(self.size_hint() + 64);
        write_json(self, &mut out, None, 0);
        out
    }

    /// A lower bound on the serialized size: string/key bytes plus
    /// punctuation, ignoring escapes and number widths.
    fn size_hint(&self) -> usize {
        match self {
            Json::Null | Json::Bool(_) => 5,
            Json::Int(_) | Json::UInt(_) | Json::Float(_) => 8,
            Json::Str(s) => s.len() + 2,
            Json::Array(items) => items.iter().map(|i| i.size_hint() + 1).sum::<usize>() + 2,
            Json::Object(fields) => {
                fields
                    .iter()
                    .map(|(k, v)| k.len() + 4 + v.size_hint())
                    .sum::<usize>()
                    + 2
            }
        }
    }

    /// Pretty serialization (two-space indent).
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, Some(2), 0);
        out
    }

    /// Parses a JSON document (rejects trailing garbage).
    ///
    /// # Errors
    /// [`JsonError`] describing the first syntax error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::msg(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_json(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Float(f) => {
            if f.is_finite() {
                // `{}` prints the shortest round-trip form; integral floats
                // print without a fraction, which is still valid JSON.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Flags each byte of `x` that JSON source treats specially inside a string:
/// `"` (0x22), `\` (0x5C), or a control byte (< 0x20). The result is nonzero
/// iff any byte of the word needs attention; used by both the serializer
/// (bytes that need escaping) and the parser (bytes that end the fast path).
#[inline]
fn special_string_bytes(x: u64) -> u64 {
    const LSB: u64 = 0x0101_0101_0101_0101;
    const MSB: u64 = 0x8080_8080_8080_8080;
    let zero = |w: u64| w.wrapping_sub(LSB) & !w & MSB;
    let quote = zero(x ^ (LSB * u64::from(b'"')));
    let backslash = zero(x ^ (LSB * u64::from(b'\\')));
    // v < 0x20 exactly: the subtraction borrows for v < 0x20 or v >= 0xA0,
    // and `!x` clears the false positives with the high bit already set.
    let control = x.wrapping_sub(LSB * 0x20) & !x & MSB;
    quote | backslash | control
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    // Copy maximal runs that need no escaping in one `push_str` each,
    // skipping eight clean bytes per word probe; only quotes, backslashes
    // and control bytes drop to per-character handling. Multi-byte UTF-8
    // passes through untouched (every byte is >= 0x80), so scanning raw
    // bytes is safe and run boundaries stay on char boundaries.
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        if i + 8 <= bytes.len() {
            let w = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
            let mask = special_string_bytes(w);
            if mask == 0 {
                i += 8;
                continue;
            }
            i += (mask.trailing_zeros() / 8) as usize;
        }
        let b = bytes[i];
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                0x08 => out.push_str("\\b"),
                0x0C => out.push_str("\\f"),
                c => out.push_str(&format!("\\u{c:04x}")),
            }
            start = i + 1;
        }
        i += 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError::msg(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
            None => Err(JsonError::msg("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::msg(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => {
                    return Err(JsonError::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => {
                    return Err(JsonError::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes, probed a word at a time.
            while self.pos + 8 <= self.bytes.len() {
                let w = u64::from_le_bytes(
                    self.bytes[self.pos..self.pos + 8]
                        .try_into()
                        .expect("8 bytes"),
                );
                let mask = special_string_bytes(w);
                if mask != 0 {
                    self.pos += (mask.trailing_zeros() / 8) as usize;
                    break;
                }
                self.pos += 8;
            }
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::msg("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| JsonError::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(JsonError::msg(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(JsonError::msg("control character in string")),
                _ => return Err(JsonError::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::msg("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::msg("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
                let _ = rest;
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::msg(format!("invalid number {text:?}")))
    }
}

/// Serialization into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes a value, erroring on shape mismatches.
    ///
    /// # Errors
    /// [`JsonError`] describing the mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes any [`ToJson`] value compactly.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Serializes any [`ToJson`] value with indentation.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses and decodes any [`FromJson`] value.
///
/// # Errors
/// [`JsonError`] on syntax or shape errors.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(input)?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::msg("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::msg("expected string"))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let u = v.as_u64().ok_or_else(|| {
                    JsonError::msg(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    JsonError::msg(concat!("out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let i = *self as i64;
                if i >= 0 {
                    Json::UInt(i as u64)
                } else {
                    Json::Int(i)
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_i64().ok_or_else(|| {
                    JsonError::msg(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    JsonError::msg(concat!("out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::msg("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::msg("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::msg("expected two-element array")),
        }
    }
}

impl<K: ToString + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_scalars() {
        for text in ["null", "true", "false", "0", "42", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v, "{text}");
        }
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-17").unwrap(), Json::Int(-17));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Float(2500.0));
    }

    #[test]
    fn big_u64_is_exact() {
        let big = u64::MAX - 3;
        let v = Json::UInt(big);
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(big));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":"x\ny"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(v.field("e").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "quote\" backslash\\ newline\n tab\t unicode \u{1F600} nul\u{0001}";
        let v = Json::Str(tricky.to_string());
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(tricky));
        // Explicit \u escapes, including a surrogate pair.
        let parsed = Json::parse(r#""A😀""#).unwrap();
        assert_eq!(parsed.as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn escapes_round_trip_at_every_word_offset() {
        // The serializer and parser probe strings eight bytes at a time;
        // walk a special character across every offset within and beyond a
        // word so both the SWAR probe and the scalar tail see it.
        for special in ['"', '\\', '\n', '\u{0001}'] {
            for offset in 0..20 {
                let mut s = "x".repeat(offset);
                s.push(special);
                s.push_str(&"y".repeat(19 - (offset + 1).min(19)));
                let text = Json::Str(s.clone()).to_string_compact();
                assert_eq!(
                    Json::parse(&text).unwrap().as_str(),
                    Some(s.as_str()),
                    "special {special:?} at offset {offset}"
                );
            }
        }
        // A long clean string exercises the multi-word fast path.
        let long = "abcdefgh".repeat(512);
        let text = Json::Str(long.clone()).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(long.as_str()));
    }

    #[test]
    fn syntax_errors_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "[1,]",
            "{\"a\":1,}",
            "\"bad \\x escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn trait_impls_round_trip() {
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
        let text = to_string(&v);
        let back: Vec<(u64, String)> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let opt: Option<i64> = None;
        assert_eq!(to_string(&opt), "null");
        let some: Option<i64> = from_str("-5").unwrap();
        assert_eq!(some, Some(-5));

        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
    }

    #[test]
    fn float_round_trip_via_display() {
        for f in [0.0, 1.5, -2.25, 0.5e-3, 1.0e9, f64::MAX] {
            let text = Json::Float(f).to_string_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Json::obj(vec![("k", Json::Array(vec![Json::UInt(1)]))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
        assert_eq!(v.to_string_compact(), "{\"k\":[1]}");
    }
}
