//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for torn-write
//! detection in the storage layer and any other integrity checking.
//!
//! Slicing-by-16: sixteen derived tables let the inner loop consume 16
//! bytes per step instead of 1, which matters because the storage layer
//! checksums every page frame it reads — on a large range query the CRC is
//! the single biggest CPU cost of the I/O path. The algorithm matches
//! zlib's `crc32`, so values can be cross-checked against external tools.

use std::sync::OnceLock;

/// Reflected CRC-32 polynomial (IEEE).
const POLY: u32 = 0xEDB8_8320;

/// Bytes consumed per sliced step; one derived table per byte of stride.
const STRIDE: usize = 16;

fn tables() -> &'static [[u32; 256]; STRIDE] {
    static TABLES: OnceLock<[[u32; 256]; STRIDE]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; STRIDE];
        for i in 0..256u32 {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            t[0][i as usize] = c;
        }
        // t[k][b] = CRC of byte b followed by k zero bytes: lets one step
        // combine 16 table lookups covering 16 input bytes.
        for i in 0..256 {
            let mut c = t[0][i];
            for k in 1..STRIDE {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, initial value 0).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continues a CRC-32 computation: `crc32_update(crc32(a), b) == crc32(a ++ b)`.
#[must_use]
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut c = !crc;
    let word =
        |ch: &[u8], at: usize| u32::from_le_bytes(ch[at..at + 4].try_into().expect("4 bytes"));
    let mut chunks = data.chunks_exact(STRIDE);
    for ch in &mut chunks {
        let w0 = word(ch, 0) ^ c;
        let (w1, w2, w3) = (word(ch, 4), word(ch, 8), word(ch, 12));
        let fold = |w: u32, base: usize| {
            t[base + 3][(w & 0xFF) as usize]
                ^ t[base + 2][((w >> 8) & 0xFF) as usize]
                ^ t[base + 1][((w >> 16) & 0xFF) as usize]
                ^ t[base][(w >> 24) as usize]
        };
        c = fold(w0, 12) ^ fold(w1, 8) ^ fold(w2, 4) ^ fold(w3, 0);
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_update(crc32(a), b), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut page = vec![0xA5u8; 512];
        let clean = crc32(&page);
        for bit in [0usize, 7, 100 * 8 + 3, 511 * 8 + 7] {
            page[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&page), clean, "flip at bit {bit} undetected");
            page[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&page), clean);
    }

    #[test]
    fn detects_truncation_against_zero_fill() {
        // A torn write leaves the tail zeroed: the checksum must differ.
        let full: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let mut torn = full.clone();
        for t in &mut torn[512..] {
            *t = 0;
        }
        assert_ne!(crc32(&torn), crc32(&full));
    }
}
