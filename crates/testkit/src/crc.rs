//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for torn-write
//! detection in the storage layer and any other integrity checking.
//!
//! Table-driven, one table built at first use; ~1 byte/cycle is plenty for
//! page-sized inputs. The algorithm matches zlib's `crc32`, so values can be
//! cross-checked against external tools.

use std::sync::OnceLock;

/// Reflected CRC-32 polynomial (IEEE).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, initial value 0).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continues a CRC-32 computation: `crc32_update(crc32(a), b) == crc32(a ++ b)`.
#[must_use]
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = !crc;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_update(crc32(a), b), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut page = vec![0xA5u8; 512];
        let clean = crc32(&page);
        for bit in [0usize, 7, 100 * 8 + 3, 511 * 8 + 7] {
            page[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&page), clean, "flip at bit {bit} undetected");
            page[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&page), clean);
    }

    #[test]
    fn detects_truncation_against_zero_fill() {
        // A torn write leaves the tail zeroed: the checksum must differ.
        let full: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let mut torn = full.clone();
        for t in &mut torn[512..] {
            *t = 0;
        }
        assert_ne!(crc32(&torn), crc32(&full));
    }
}
