//! Scoped temporary directories, removed when dropped.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use std::{env, fs, io, process};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, deleted
/// (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh temporary directory.
    ///
    /// # Errors
    /// Propagates the underlying `create_dir` failure.
    pub fn new() -> io::Result<TempDir> {
        let base = env::temp_dir();
        let pid = process::id();
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        // Retry a few times in case of a rare name collision.
        for _ in 0..16 {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = base.join(format!("tilestore-{pid}-{nanos:09}-{n}"));
            match fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "could not create a unique temp dir",
        ))
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort; a leaked dir under /tmp is not worth a panic-in-drop.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Creates a [`TempDir`] (drop-in for `tempfile::tempdir()`).
///
/// # Errors
/// Propagates the underlying `create_dir` failure.
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        fs::write(path.join("x.txt"), b"hello").unwrap();
        fs::create_dir(path.join("sub")).unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn names_are_unique() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
