//! Wall-clock micro-benchmark runner for `harness = false` bench targets.
//!
//! A [`Group`] times closures over a warmup phase plus N measured
//! iterations and prints a median/p95 report:
//!
//! ```text
//! tiling/aligned_regular_32K      median 412.3µs  p95 433.9µs  min 405.1µs  max 512.0µs  (n=30)
//! ```
//!
//! Environment knobs: `TILESTORE_BENCH_SAMPLES` overrides the per-bench
//! sample count (useful for quick smoke runs: `TILESTORE_BENCH_SAMPLES=3`).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default number of measured iterations per benchmark.
pub const DEFAULT_SAMPLE_SIZE: usize = 30;

/// Cap on total measurement time per benchmark.
const MAX_MEASURE_TIME: Duration = Duration::from_secs(3);

/// Cap on warmup time per benchmark.
const MAX_WARMUP_TIME: Duration = Duration::from_millis(300);

/// Summary statistics of one benchmark's timed iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Number of measured iterations.
    pub n: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// 95th-percentile iteration.
    pub p95: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl Report {
    /// Computes the summary of a non-empty sample set.
    ///
    /// # Panics
    /// Panics when `samples` is empty.
    #[must_use]
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        assert!(!samples.is_empty(), "no samples");
        samples.sort_unstable();
        let n = samples.len();
        let pick = |q: f64| {
            let idx = ((n as f64 - 1.0) * q).floor() as usize;
            samples[idx.min(n - 1)]
        };
        Report {
            n,
            min: samples[0],
            median: pick(0.5),
            p95: pick(0.95),
            max: samples[n - 1],
        }
    }
}

/// Formats a duration with an adaptive unit (ns/µs/ms/s).
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing sample-size and throughput settings.
pub struct Group {
    name: String,
    sample_size: usize,
    throughput_bytes: Option<u64>,
}

impl Group {
    /// A group with the default sample size.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let sample_size = std::env::var("TILESTORE_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SAMPLE_SIZE);
        Group {
            name: name.to_string(),
            sample_size,
            throughput_bytes: None,
        }
    }

    /// Overrides the number of measured iterations (the environment
    /// variable still wins, so quick smoke runs stay quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("TILESTORE_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Reports throughput (bytes processed per iteration) alongside times.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Times `f`: warmup, then up to `sample_size` measured iterations
    /// (time-capped), printing the report line. Returns the [`Report`].
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> Report {
        // Warmup: at least one run, until the warmup budget is spent.
        let warmup_start = Instant::now();
        let mut warmups = 0u32;
        while warmups == 0 || (warmup_start.elapsed() < MAX_WARMUP_TIME && warmups < 10) {
            black_box(f());
            warmups += 1;
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
            if measure_start.elapsed() > MAX_MEASURE_TIME && samples.len() >= 5 {
                break;
            }
        }
        let report = Report::from_samples(samples);
        let mut line = format!(
            "{:<42} median {:>9}  p95 {:>9}  min {:>9}  max {:>9}  (n={})",
            format!("{}/{id}", self.name),
            fmt_duration(report.median),
            fmt_duration(report.p95),
            fmt_duration(report.min),
            fmt_duration(report.max),
            report.n
        );
        if let Some(bytes) = self.throughput_bytes {
            let secs = report.median.as_secs_f64();
            if secs > 0.0 {
                let mibps = bytes as f64 / secs / (1024.0 * 1024.0);
                line.push_str(&format!("  thrpt {mibps:.1} MiB/s"));
            }
        }
        println!("{line}");
        report
    }

    /// Equivalent of criterion's `bench_with_input`: forwards `input` to the
    /// closure. Exists so ported benches keep their shape.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: &str,
        input: &I,
        mut f: impl FnMut(&I) -> R,
    ) -> Report {
        self.bench(id, || f(input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_statistics_are_ordered() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let r = Report::from_samples(samples);
        assert_eq!(r.n, 100);
        assert_eq!(r.min, Duration::from_micros(1));
        assert_eq!(r.max, Duration::from_micros(100));
        assert!(r.min <= r.median && r.median <= r.p95 && r.p95 <= r.max);
        assert_eq!(r.median, Duration::from_micros(50));
        assert_eq!(r.p95, Duration::from_micros(95));
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut g = Group::new("selftest");
        g.sample_size(5);
        let mut runs = 0u64;
        let r = g.bench("noop", || {
            runs += 1;
            runs
        });
        assert!(r.n >= 1);
        assert!(runs as usize >= r.n, "warmup must run too");
        assert!(r.min <= r.p95);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
    }
}
