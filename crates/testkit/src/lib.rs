//! In-tree test toolkit keeping the workspace free of external crates.
//!
//! The workspace builds hermetically — no registry dependencies — so every
//! facility the tests, benches and persistence layer need is provided here:
//!
//! * [`rng`] — a deterministic seedable PRNG (SplitMix64-seeded
//!   xoshiro256++) with `gen_range`/`gen_bool`/`shuffle`/`fill_bytes`
//!   helpers.
//! * [`prop`] — a minimal property-testing harness with configurable case
//!   counts, deterministic per-property seeds, failing-seed reporting and
//!   greedy input shrinking over the recorded random-choice tape.
//! * [`mod@bench`] — a wall-clock micro-benchmark runner (warmup + N timed
//!   iterations, median/p95 report) for `harness = false` bench targets.
//! * [`json`] — a small JSON value model, parser and printer plus the
//!   [`ToJson`]/[`FromJson`] traits used by catalog persistence and the
//!   benchmark reports.
//! * [`crc`] — CRC-32 (IEEE) for torn-write detection in checksummed page
//!   frames.
//! * [`mod@tempdir`] — scoped temporary directories removed on drop.

#![warn(missing_docs)]

pub mod bench;
pub mod crc;
pub mod json;
pub mod prop;
pub mod rng;
pub mod tempdir;

pub use crc::{crc32, crc32_update};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::Rng;
pub use tempdir::{tempdir, TempDir};
