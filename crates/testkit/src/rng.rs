//! Deterministic pseudo-random numbers: xoshiro256++ seeded via SplitMix64.
//!
//! The generator is *not* cryptographic; it exists so workloads and tests
//! are reproducible from a single `u64` seed on every platform.

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 sequence, also usable standalone to derive
/// independent child seeds from a base seed.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, as the
    /// xoshiro authors recommend).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// The next raw 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of a draw.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `range`. Supports the integer `Range` and
    /// `RangeInclusive` types via [`SampleRange`].
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

/// Integer ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value in the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = rng.next_u64() % span;
                (self.start as i64).wrapping_add(off as i64) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                (lo as i64).wrapping_add(off as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(0u32..500);
            assert!(v < 500);
            let w = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&w));
            let x = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }

    #[test]
    fn fill_bytes_and_shuffle_are_deterministic() {
        let mut a = Rng::seed_from_u64(4);
        let mut b = Rng::seed_from_u64(4);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != 0));

        let mut v: Vec<u32> = (0..50).collect();
        let mut w = v.clone();
        a.shuffle(&mut v);
        b.shuffle(&mut w);
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
