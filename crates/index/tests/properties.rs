//! Property test: the R+-tree search must agree with a linear scan for any
//! entry set and query, including after random removals and for bulk loads.

use proptest::prelude::*;
use tilestore_geometry::Domain;
use tilestore_index::{LinearIndex, RPlusTree};

fn domain(dim: usize) -> impl Strategy<Value = Domain> {
    proptest::collection::vec((-40i64..40, 0i64..12), dim).prop_map(|bounds| {
        let bounds: Vec<(i64, i64)> = bounds
            .into_iter()
            .map(|(lo, ext)| (lo, lo + ext))
            .collect();
        Domain::from_bounds(&bounds).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_search_equals_linear_scan(
        entries in proptest::collection::vec(domain(2), 0..120),
        queries in proptest::collection::vec(domain(2), 1..8),
        fanout in 2usize..10,
    ) {
        let mut tree = RPlusTree::with_fanout(2, fanout).unwrap();
        let mut lin = LinearIndex::new(2);
        for (i, dom) in entries.iter().enumerate() {
            tree.insert(dom.clone(), i as u64).unwrap();
            lin.insert(dom.clone(), i as u64).unwrap();
        }
        prop_assert_eq!(tree.len(), entries.len());
        for q in &queries {
            let mut a = tree.search(q).hits;
            let mut b = lin.search(q).hits;
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_equals_incremental(
        entries in proptest::collection::vec(domain(3), 0..100),
        query in domain(3),
        fanout in 2usize..12,
    ) {
        let pairs: Vec<(Domain, u64)> = entries
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, d)| (d, i as u64))
            .collect();
        let bulk = RPlusTree::bulk_load(3, fanout, pairs.clone()).unwrap();
        let mut inc = RPlusTree::with_fanout(3, fanout).unwrap();
        for (d, p) in pairs {
            inc.insert(d, p).unwrap();
        }
        let mut a = bulk.search(&query).hits;
        let mut b = inc.search(&query).hits;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn removal_preserves_search_correctness(
        entries in proptest::collection::vec(domain(2), 1..80),
        remove_mask in proptest::collection::vec(any::<bool>(), 1..80),
        query in domain(2),
    ) {
        let mut tree = RPlusTree::with_fanout(2, 4).unwrap();
        for (i, dom) in entries.iter().enumerate() {
            tree.insert(dom.clone(), i as u64).unwrap();
        }
        let mut surviving: Vec<(Domain, u64)> = Vec::new();
        for (i, dom) in entries.iter().enumerate() {
            if remove_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(tree.remove(dom, i as u64));
            } else {
                surviving.push((dom.clone(), i as u64));
            }
        }
        prop_assert_eq!(tree.len(), surviving.len());
        let mut a = tree.search(&query).hits;
        let mut b: Vec<u64> = surviving
            .iter()
            .filter(|(d, _)| d.intersects(&query))
            .map(|&(_, p)| p)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
