//! Property test: the R+-tree search must agree with a linear scan for any
//! entry set and query, including after random removals and for bulk loads.

use tilestore_geometry::Domain;
use tilestore_index::{LinearIndex, RPlusTree};
use tilestore_testkit::prop::{check, Source};
use tilestore_testkit::{prop_assert, prop_assert_eq};

fn domain(s: &mut Source, dim: usize) -> Domain {
    let bounds: Vec<(i64, i64)> = (0..dim)
        .map(|_| {
            let lo = s.i64_in(-40, 39);
            let ext = s.i64_in(0, 11);
            (lo, lo + ext)
        })
        .collect();
    Domain::from_bounds(&bounds).unwrap()
}

#[test]
fn tree_search_equals_linear_scan() {
    check(
        "tree_search_equals_linear_scan",
        64,
        |s| {
            let entries = s.vec_of(0, 119, |s| domain(s, 2));
            let queries = s.vec_of(1, 7, |s| domain(s, 2));
            (entries, queries, s.usize_in(2, 9))
        },
        |(entries, queries, fanout)| {
            let mut tree = RPlusTree::with_fanout(2, *fanout).unwrap();
            let mut lin = LinearIndex::new(2);
            for (i, dom) in entries.iter().enumerate() {
                tree.insert(dom.clone(), i as u64).unwrap();
                lin.insert(dom.clone(), i as u64).unwrap();
            }
            prop_assert_eq!(tree.len(), entries.len());
            for q in queries {
                let mut a = tree.search(q).hits;
                let mut b = lin.search(q).hits;
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
            }
            Ok(())
        },
    );
}

#[test]
fn bulk_load_equals_incremental() {
    check(
        "bulk_load_equals_incremental",
        64,
        |s| {
            let entries = s.vec_of(0, 99, |s| domain(s, 3));
            let query = domain(s, 3);
            (entries, query, s.usize_in(2, 11))
        },
        |(entries, query, fanout)| {
            let pairs: Vec<(Domain, u64)> = entries
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, d)| (d, i as u64))
                .collect();
            let bulk = RPlusTree::bulk_load(3, *fanout, pairs.clone()).unwrap();
            let mut inc = RPlusTree::with_fanout(3, *fanout).unwrap();
            for (d, p) in pairs {
                inc.insert(d, p).unwrap();
            }
            let mut a = bulk.search(query).hits;
            let mut b = inc.search(query).hits;
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

#[test]
fn removal_preserves_search_correctness() {
    check(
        "removal_preserves_search_correctness",
        64,
        |s| {
            let entries = s.vec_of(1, 79, |s| domain(s, 2));
            let remove_mask = s.vec_of(1, 79, Source::bool);
            let query = domain(s, 2);
            (entries, remove_mask, query)
        },
        |(entries, remove_mask, query)| {
            let mut tree = RPlusTree::with_fanout(2, 4).unwrap();
            for (i, dom) in entries.iter().enumerate() {
                tree.insert(dom.clone(), i as u64).unwrap();
            }
            let mut surviving: Vec<(Domain, u64)> = Vec::new();
            for (i, dom) in entries.iter().enumerate() {
                if remove_mask.get(i).copied().unwrap_or(false) {
                    prop_assert!(tree.remove(dom, i as u64));
                } else {
                    surviving.push((dom.clone(), i as u64));
                }
            }
            prop_assert_eq!(tree.len(), surviving.len());
            let mut a = tree.search(query).hits;
            let mut b: Vec<u64> = surviving
                .iter()
                .filter(|(d, _)| d.intersects(query))
                .map(|&(_, p)| p)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

/// Any tree shape — bulk-loaded or grown and pruned — survives JSON.
#[test]
fn json_round_trip_for_arbitrary_trees() {
    check(
        "json_round_trip_for_arbitrary_trees",
        64,
        |s| {
            let entries = s.vec_of(0, 59, |s| domain(s, 2));
            let remove_mask = s.vec_of(0, 59, Source::bool);
            (entries, remove_mask, s.usize_in(2, 9))
        },
        |(entries, remove_mask, fanout)| {
            let mut tree = RPlusTree::with_fanout(2, *fanout).unwrap();
            for (i, dom) in entries.iter().enumerate() {
                tree.insert(dom.clone(), i as u64).unwrap();
            }
            for (i, dom) in entries.iter().enumerate() {
                if remove_mask.get(i).copied().unwrap_or(false) {
                    tree.remove(dom, i as u64);
                }
            }
            let text = tilestore_testkit::json::to_string(&tree);
            let back: RPlusTree = tilestore_testkit::json::from_str(&text).unwrap();
            prop_assert_eq!(&back, &tree);
            Ok(())
        },
    );
}
