//! Error type for the tile index.

use std::fmt;

use tilestore_geometry::GeometryError;

/// Errors raised by index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// An underlying geometric operation failed.
    Geometry(GeometryError),
    /// An entry with mismatched dimensionality was inserted.
    DimensionMismatch {
        /// Dimensionality of the index.
        index: usize,
        /// Dimensionality of the entry.
        entry: usize,
    },
    /// Fanout below the minimum of 2.
    BadFanout {
        /// The offending fanout.
        fanout: usize,
    },
    /// A persisted index blob failed to decode.
    Corrupt(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Geometry(e) => write!(f, "geometry error: {e}"),
            IndexError::DimensionMismatch { index, entry } => {
                write!(f, "index holds {index}-D entries, got {entry}-D")
            }
            IndexError::BadFanout { fanout } => {
                write!(f, "fanout {fanout} too small (minimum 2)")
            }
            IndexError::Corrupt(what) => write!(f, "corrupt index blob: {what}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeometryError> for IndexError {
    fn from(e: GeometryError) -> Self {
        IndexError::Geometry(e)
    }
}

/// Convenience result alias for index operations.
pub type Result<T> = std::result::Result<T, IndexError>;
