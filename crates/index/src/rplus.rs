//! R+-tree-like multidimensional index over disjoint tile domains.
//!
//! §5: "an MDD object is composed of a set of multidimensional tiles and an
//! index on tiles … For each access to a multidimensional subinterval of
//! the object, the index returns the tiles intersected by the query region."
//!
//! Because a tiling's tiles are pairwise disjoint, the structure stays close
//! to the R+-tree of the paper's reference \[9\]: leaf entries never overlap,
//! and only directory rectangles may. The implementation is an arena-based
//! height-balanced tree with least-enlargement insertion, midpoint splits,
//! STR bulk loading, and node-visit accounting for the `t_ix` measurement.

use tilestore_geometry::Domain;
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{IndexError, Result};

/// Default maximum node fanout: entries of ~40 bytes on a 2 KiB directory
/// page give roughly this order.
pub const DEFAULT_FANOUT: usize = 32;

/// Result of a range search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Payloads of the entries intersecting the query region.
    pub hits: Vec<u64>,
    /// Number of index nodes visited — the basis of `t_ix`.
    pub nodes_visited: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct LeafEntry {
    domain: Domain,
    payload: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct ChildEntry {
    mbr: Domain,
    node: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<ChildEntry>),
    /// Recycled slot.
    Free,
}

/// The R+-tree index.
#[derive(Debug, Clone, PartialEq)]
pub struct RPlusTree {
    dim: usize,
    fanout: usize,
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl ToJson for LeafEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("domain", self.domain.to_json()),
            ("payload", self.payload.to_json()),
        ])
    }
}

impl FromJson for LeafEntry {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(LeafEntry {
            domain: Domain::from_json(v.field("domain")?)?,
            payload: u64::from_json(v.field("payload")?)?,
        })
    }
}

impl ToJson for ChildEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mbr", self.mbr.to_json()),
            ("node", self.node.to_json()),
        ])
    }
}

impl FromJson for ChildEntry {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(ChildEntry {
            mbr: Domain::from_json(v.field("mbr")?)?,
            node: usize::from_json(v.field("node")?)?,
        })
    }
}

impl ToJson for Node {
    fn to_json(&self) -> Json {
        match self {
            Node::Leaf(entries) => Json::obj(vec![("leaf", entries.to_json())]),
            Node::Internal(children) => Json::obj(vec![("internal", children.to_json())]),
            Node::Free => Json::Str("free".to_string()),
        }
    }
}

impl FromJson for Node {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        if let Some("free") = v.as_str() {
            return Ok(Node::Free);
        }
        if let Some(entries) = v.get("leaf") {
            return Ok(Node::Leaf(Vec::from_json(entries)?));
        }
        if let Some(children) = v.get("internal") {
            return Ok(Node::Internal(Vec::from_json(children)?));
        }
        Err(JsonError::msg("expected \"free\", leaf or internal node"))
    }
}

impl ToJson for RPlusTree {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dim", self.dim.to_json()),
            ("fanout", self.fanout.to_json()),
            ("root", self.root.to_json()),
            ("len", self.len.to_json()),
            ("free", self.free.to_json()),
            ("nodes", self.nodes.to_json()),
        ])
    }
}

impl FromJson for RPlusTree {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(RPlusTree {
            dim: usize::from_json(v.field("dim")?)?,
            fanout: usize::from_json(v.field("fanout")?)?,
            root: usize::from_json(v.field("root")?)?,
            len: usize::from_json(v.field("len")?)?,
            free: Vec::from_json(v.field("free")?)?,
            nodes: Vec::from_json(v.field("nodes")?)?,
        })
    }
}

impl RPlusTree {
    /// An empty index for `dim`-dimensional entries with the default fanout.
    ///
    /// # Errors
    /// [`IndexError::BadFanout`] is never returned here; see
    /// [`RPlusTree::with_fanout`].
    pub fn new(dim: usize) -> Result<Self> {
        Self::with_fanout(dim, DEFAULT_FANOUT)
    }

    /// An empty index with an explicit maximum node fanout.
    ///
    /// # Errors
    /// [`IndexError::BadFanout`] when `fanout < 2`.
    pub fn with_fanout(dim: usize, fanout: usize) -> Result<Self> {
        if fanout < 2 {
            return Err(IndexError::BadFanout { fanout });
        }
        Ok(RPlusTree {
            dim,
            fanout,
            nodes: vec![Node::Leaf(Vec::new())],
            free: Vec::new(),
            root: 0,
            len: 0,
        })
    }

    /// Number of indexed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed domains.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Height of the tree (1 for a single leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf(_) => return h,
                Node::Internal(children) => {
                    node = children.first().map_or(self.root, |c| c.node);
                    if children.is_empty() {
                        return h;
                    }
                    h += 1;
                }
                Node::Free => unreachable!("free node reached from root"),
            }
        }
    }

    /// Total number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn check_dim(&self, domain: &Domain) -> Result<()> {
        if domain.dim() != self.dim {
            return Err(IndexError::DimensionMismatch {
                index: self.dim,
                entry: domain.dim(),
            });
        }
        Ok(())
    }

    /// Inserts an entry mapping `domain` to `payload`.
    ///
    /// The caller (the storage engine) guarantees entry domains are pairwise
    /// disjoint; the index does not re-check on the hot path.
    ///
    /// # Errors
    /// [`IndexError::DimensionMismatch`] for a wrong-dimensional domain.
    pub fn insert(&mut self, domain: Domain, payload: u64) -> Result<()> {
        self.check_dim(&domain)?;
        if let Some((sib_mbr, sib_idx)) = self.insert_rec(self.root, domain, payload) {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            let old_mbr = self.node_mbr(old_root).expect("old root non-empty");
            let new_root = self.alloc(Node::Internal(vec![
                ChildEntry {
                    mbr: old_mbr,
                    node: old_root,
                },
                ChildEntry {
                    mbr: sib_mbr,
                    node: sib_idx,
                },
            ]));
            self.root = new_root;
        }
        self.len += 1;
        Ok(())
    }

    /// MBR of all entries below `node`; `None` for an empty node.
    fn node_mbr(&self, node: usize) -> Option<Domain> {
        match &self.nodes[node] {
            Node::Leaf(entries) => {
                let mut it = entries.iter();
                let first = it.next()?.domain.clone();
                Some(it.fold(first, |acc, e| {
                    acc.hull(&e.domain).expect("uniform dimensionality")
                }))
            }
            Node::Internal(children) => {
                let mut it = children.iter();
                let first = it.next()?.mbr.clone();
                Some(it.fold(first, |acc, c| {
                    acc.hull(&c.mbr).expect("uniform dimensionality")
                }))
            }
            Node::Free => None,
        }
    }

    /// Recursive insert; returns the (mbr, index) of a split-off sibling.
    fn insert_rec(&mut self, node: usize, domain: Domain, payload: u64) -> Option<(Domain, usize)> {
        match &mut self.nodes[node] {
            Node::Leaf(entries) => {
                entries.push(LeafEntry { domain, payload });
                if entries.len() > self.fanout {
                    return Some(self.split_leaf(node));
                }
                None
            }
            Node::Internal(children) => {
                debug_assert!(!children.is_empty(), "internal node without children");
                // Choose the child needing the least MBR enlargement;
                // tie-break on smaller resulting area (cell count).
                let mut best = 0usize;
                let mut best_growth = u64::MAX;
                let mut best_area = u64::MAX;
                for (i, c) in children.iter().enumerate() {
                    let hull = c.mbr.hull(&domain).expect("uniform dimensionality");
                    let area = hull.cell_count().unwrap_or(u64::MAX);
                    let old = c.mbr.cell_count().unwrap_or(u64::MAX);
                    let growth = area.saturating_sub(old);
                    if growth < best_growth || (growth == best_growth && area < best_area) {
                        best = i;
                        best_growth = growth;
                        best_area = area;
                    }
                }
                let child_idx = children[best].node;
                let new_mbr = children[best]
                    .mbr
                    .hull(&domain)
                    .expect("uniform dimensionality");
                children[best].mbr = new_mbr;
                let split = self.insert_rec(child_idx, domain, payload);
                if let Some((sib_mbr, sib_idx)) = split {
                    // Recompute the split child's MBR (it shrank) and add
                    // the sibling.
                    let shrunk = self.node_mbr(child_idx).expect("non-empty after split");
                    let Node::Internal(children) = &mut self.nodes[node] else {
                        unreachable!("node kind cannot change");
                    };
                    children[best].mbr = shrunk;
                    children.push(ChildEntry {
                        mbr: sib_mbr,
                        node: sib_idx,
                    });
                    if children.len() > self.fanout {
                        return Some(self.split_internal(node));
                    }
                }
                None
            }
            Node::Free => unreachable!("insert into free node"),
        }
    }

    /// Axis with the widest spread of entry centers — the split axis.
    fn widest_axis(centers: &[Vec<i64>]) -> usize {
        let dim = centers.first().map_or(0, Vec::len);
        (0..dim)
            .max_by_key(|&a| {
                let min = centers.iter().map(|c| c[a]).min().unwrap_or(0);
                let max = centers.iter().map(|c| c[a]).max().unwrap_or(0);
                max.abs_diff(min)
            })
            .unwrap_or(0)
    }

    fn split_leaf(&mut self, node: usize) -> (Domain, usize) {
        let Node::Leaf(entries) = &mut self.nodes[node] else {
            unreachable!("split_leaf on non-leaf");
        };
        let mut entries = std::mem::take(entries);
        let centers: Vec<Vec<i64>> = entries
            .iter()
            .map(|e| {
                (0..e.domain.dim())
                    .map(|a| e.domain.lo(a) / 2 + e.domain.hi(a) / 2)
                    .collect()
            })
            .collect();
        let axis = Self::widest_axis(&centers);
        entries.sort_by_key(|e| (e.domain.lo(axis), e.domain.hi(axis)));
        let right = entries.split_off(entries.len() / 2);
        self.nodes[node] = Node::Leaf(entries);
        let sib = self.alloc(Node::Leaf(right));
        let mbr = self.node_mbr(sib).expect("split halves are non-empty");
        (mbr, sib)
    }

    fn split_internal(&mut self, node: usize) -> (Domain, usize) {
        let Node::Internal(children) = &mut self.nodes[node] else {
            unreachable!("split_internal on non-internal");
        };
        let mut children = std::mem::take(children);
        let centers: Vec<Vec<i64>> = children
            .iter()
            .map(|c| {
                (0..c.mbr.dim())
                    .map(|a| c.mbr.lo(a) / 2 + c.mbr.hi(a) / 2)
                    .collect()
            })
            .collect();
        let axis = Self::widest_axis(&centers);
        children.sort_by_key(|c| (c.mbr.lo(axis), c.mbr.hi(axis)));
        let right = children.split_off(children.len() / 2);
        self.nodes[node] = Node::Internal(children);
        let sib = self.alloc(Node::Internal(right));
        let mbr = self.node_mbr(sib).expect("split halves are non-empty");
        (mbr, sib)
    }

    /// Returns the payloads of all entries intersecting `region`, plus the
    /// number of nodes visited.
    #[must_use]
    pub fn search(&self, region: &Domain) -> SearchResult {
        let mut hits = Vec::new();
        let mut visited = 0u64;
        self.search_rec(self.root, region, &mut hits, &mut visited);
        tilestore_obs::hot().index_nodes.record(visited);
        tilestore_obs::tracer().event("index_search", || {
            format!("region={region} nodes={visited} hits={}", hits.len())
        });
        SearchResult {
            hits,
            nodes_visited: visited,
        }
    }

    fn search_rec(&self, node: usize, region: &Domain, hits: &mut Vec<u64>, visited: &mut u64) {
        *visited += 1;
        match &self.nodes[node] {
            Node::Leaf(entries) => {
                for e in entries {
                    if e.domain.intersects(region) {
                        hits.push(e.payload);
                    }
                }
            }
            Node::Internal(children) => {
                for c in children {
                    if c.mbr.intersects(region) {
                        self.search_rec(c.node, region, hits, visited);
                    }
                }
            }
            Node::Free => unreachable!("search reached free node"),
        }
    }

    /// Visits every entry in the index.
    pub fn for_each<F: FnMut(&Domain, u64)>(&self, mut f: F) {
        self.for_each_rec(self.root, &mut f);
    }

    fn for_each_rec<F: FnMut(&Domain, u64)>(&self, node: usize, f: &mut F) {
        match &self.nodes[node] {
            Node::Leaf(entries) => {
                for e in entries {
                    f(&e.domain, e.payload);
                }
            }
            Node::Internal(children) => {
                for c in children {
                    self.for_each_rec(c.node, f);
                }
            }
            Node::Free => unreachable!("traversal reached free node"),
        }
    }

    /// Removes the entry with exactly this `domain` and `payload`.
    /// Returns whether an entry was removed.
    ///
    /// Empty nodes are pruned; no entry re-insertion is performed (tilings
    /// are replaced wholesale on re-tiling, so fine-grained rebalancing
    /// after deletes is not on the hot path).
    pub fn remove(&mut self, domain: &Domain, payload: u64) -> bool {
        if domain.dim() != self.dim {
            return false;
        }
        let removed = self.remove_rec(self.root, domain, payload);
        if removed {
            self.len -= 1;
            // Collapse a root with a single internal child.
            while let Node::Internal(children) = &self.nodes[self.root] {
                if children.len() == 1 {
                    let only = children[0].node;
                    let old_root = self.root;
                    self.nodes[old_root] = Node::Free;
                    self.free.push(old_root);
                    self.root = only;
                } else {
                    break;
                }
            }
        }
        removed
    }

    fn remove_rec(&mut self, node: usize, domain: &Domain, payload: u64) -> bool {
        match &mut self.nodes[node] {
            Node::Leaf(entries) => {
                let before = entries.len();
                entries.retain(|e| !(e.payload == payload && &e.domain == domain));
                entries.len() != before
            }
            Node::Internal(children) => {
                let candidates: Vec<(usize, usize)> = children
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.mbr.contains_domain(domain))
                    .map(|(i, c)| (i, c.node))
                    .collect();
                for (i, child) in candidates {
                    if self.remove_rec(child, domain, payload) {
                        match self.node_mbr(child) {
                            Some(mbr) => {
                                let Node::Internal(children) = &mut self.nodes[node] else {
                                    unreachable!("node kind cannot change");
                                };
                                children[i].mbr = mbr;
                            }
                            None => {
                                self.nodes[child] = Node::Free;
                                self.free.push(child);
                                let Node::Internal(children) = &mut self.nodes[node] else {
                                    unreachable!("node kind cannot change");
                                };
                                children.remove(i);
                            }
                        }
                        return true;
                    }
                }
                false
            }
            Node::Free => false,
        }
    }

    /// Bulk-loads entries with sort-tile-recursive packing: entries are
    /// sorted by their lowest corner (row-major point order) and packed into
    /// full leaves, then directory levels are packed the same way. Produces
    /// a compact tree with fully-packed nodes — preferable to repeated
    /// [`RPlusTree::insert`] when loading a whole tiling.
    ///
    /// # Errors
    /// [`IndexError::DimensionMismatch`] or [`IndexError::BadFanout`].
    pub fn bulk_load(dim: usize, fanout: usize, mut entries: Vec<(Domain, u64)>) -> Result<Self> {
        let mut tree = Self::with_fanout(dim, fanout)?;
        for (d, _) in &entries {
            tree.check_dim(d)?;
        }
        if entries.is_empty() {
            return Ok(tree);
        }
        tree.len = entries.len();
        entries.sort_by_key(|a| a.0.lowest());
        // Build leaves.
        tree.nodes.clear();
        tree.free.clear();
        let mut level: Vec<ChildEntry> = entries
            .chunks(fanout)
            .map(|chunk| {
                let leaf: Vec<LeafEntry> = chunk
                    .iter()
                    .map(|(d, p)| LeafEntry {
                        domain: d.clone(),
                        payload: *p,
                    })
                    .collect();
                let mbr = leaf.iter().skip(1).fold(leaf[0].domain.clone(), |acc, e| {
                    acc.hull(&e.domain).expect("uniform dimensionality")
                });
                tree.nodes.push(Node::Leaf(leaf));
                ChildEntry {
                    mbr,
                    node: tree.nodes.len() - 1,
                }
            })
            .collect();
        // Pack directory levels until a single root remains.
        while level.len() > 1 {
            level = level
                .chunks(fanout)
                .map(|chunk| {
                    let children = chunk.to_vec();
                    let mbr = children
                        .iter()
                        .skip(1)
                        .fold(children[0].mbr.clone(), |acc, c| {
                            acc.hull(&c.mbr).expect("uniform dimensionality")
                        });
                    tree.nodes.push(Node::Internal(children));
                    ChildEntry {
                        mbr,
                        node: tree.nodes.len() - 1,
                    }
                })
                .collect();
        }
        tree.root = level[0].node;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    /// A 10x10 grid of 10x10 tiles over [0:99,0:99].
    fn grid_entries() -> Vec<(Domain, u64)> {
        let mut v = Vec::new();
        let mut id = 0u64;
        for i in 0..10 {
            for j in 0..10 {
                let dom =
                    Domain::from_bounds(&[(i * 10, i * 10 + 9), (j * 10, j * 10 + 9)]).unwrap();
                v.push((dom, id));
                id += 1;
            }
        }
        v
    }

    #[test]
    fn insert_and_search_small() {
        let mut t = RPlusTree::with_fanout(2, 4).unwrap();
        for (dom, id) in grid_entries() {
            t.insert(dom, id).unwrap();
        }
        assert_eq!(t.len(), 100);
        let r = t.search(&d("[15:24,15:24]"));
        let mut hits = r.hits;
        hits.sort_unstable();
        assert_eq!(hits, vec![11, 12, 21, 22]);
        assert!(r.nodes_visited >= 2);
    }

    #[test]
    fn search_matches_linear_scan() {
        let entries = grid_entries();
        let mut t = RPlusTree::with_fanout(2, 4).unwrap();
        for (dom, id) in entries.clone() {
            t.insert(dom, id).unwrap();
        }
        for q in ["[0:0,0:0]", "[0:99,0:99]", "[37:61,2:98]", "[95:99,95:99]"] {
            let q = d(q);
            let mut fast = t.search(&q).hits;
            fast.sort_unstable();
            let mut slow: Vec<u64> = entries
                .iter()
                .filter(|(dom, _)| dom.intersects(&q))
                .map(|&(_, id)| id)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow, "query {q}");
        }
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let entries = grid_entries();
        let bulk = RPlusTree::bulk_load(2, 8, entries.clone()).unwrap();
        assert_eq!(bulk.len(), 100);
        let q = d("[5:15,5:15]");
        let mut hits = bulk.search(&q).hits;
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 10, 11]);
        // Bulk-loaded tree is packed: node count near minimum.
        assert!(
            bulk.node_count() <= 13 + 2 + 1,
            "nodes: {}",
            bulk.node_count()
        );
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = RPlusTree::bulk_load(2, 4, grid_entries()).unwrap();
        // 100 entries at fanout 4: 25 leaves, 7 internals, 2 uppers, 1 root.
        assert!(t.height() >= 3);
        let mut count = 0;
        t.for_each(|_, _| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn remove_deletes_exactly_one_entry() {
        let mut t = RPlusTree::with_fanout(2, 4).unwrap();
        for (dom, id) in grid_entries() {
            t.insert(dom, id).unwrap();
        }
        let victim = d("[10:19,10:19]");
        assert!(t.remove(&victim, 11));
        assert!(!t.remove(&victim, 11), "double delete must fail");
        assert_eq!(t.len(), 99);
        let hits = t.search(&victim).hits;
        assert!(!hits.contains(&11));
    }

    #[test]
    fn remove_all_then_reuse() {
        let mut t = RPlusTree::with_fanout(2, 4).unwrap();
        let entries = grid_entries();
        for (dom, id) in entries.clone() {
            t.insert(dom, id).unwrap();
        }
        for (dom, id) in &entries {
            assert!(t.remove(dom, *id));
        }
        assert!(t.is_empty());
        // The tree is usable after full removal.
        t.insert(d("[0:4,0:4]"), 500).unwrap();
        assert_eq!(t.search(&d("[0:99,0:99]")).hits, vec![500]);
    }

    #[test]
    fn dimension_checks() {
        let mut t = RPlusTree::new(2).unwrap();
        assert!(matches!(
            t.insert(d("[0:1]"), 0),
            Err(IndexError::DimensionMismatch { index: 2, entry: 1 })
        ));
        assert!(RPlusTree::with_fanout(2, 1).is_err());
        assert!(!t.remove(&d("[0:1]"), 0));
    }

    #[test]
    fn json_round_trip() {
        let t = RPlusTree::bulk_load(2, 4, grid_entries()).unwrap();
        let json = tilestore_testkit::json::to_string(&t);
        let back: RPlusTree = tilestore_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.search(&d("[0:9,0:9]")).hits, vec![0]);
    }

    #[test]
    fn json_round_trip_preserves_free_slots() {
        let mut t = RPlusTree::with_fanout(2, 4).unwrap();
        for (dom, id) in grid_entries() {
            t.insert(dom, id).unwrap();
        }
        for (dom, id) in grid_entries().iter().take(90) {
            assert!(t.remove(dom, *id));
        }
        let json = tilestore_testkit::json::to_string(&t);
        let back: RPlusTree = tilestore_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_tree_search() {
        let t = RPlusTree::new(3).unwrap();
        let r = t.search(&d("[0:1,0:1,0:1]"));
        assert!(r.hits.is_empty());
        assert_eq!(r.nodes_visited, 1);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn nodes_visited_less_than_linear_for_point_query() {
        let entries = grid_entries();
        let t = RPlusTree::bulk_load(2, 4, entries).unwrap();
        let r = t.search(&d("[55:55,55:55]"));
        assert_eq!(r.hits.len(), 1);
        assert!(
            r.nodes_visited < 15,
            "point query visited {} nodes",
            r.nodes_visited
        );
    }
}
