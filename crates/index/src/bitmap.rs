//! Hierarchical bitmap index over binned cell values.
//!
//! The R+-tree answers "which tiles intersect this *region*"; this
//! structure answers the orthogonal question "which tiles can possibly
//! contain a cell with this *value*" (Krčál, Ho & Holub: hierarchical
//! bitmap indexing for range and membership queries on arrays). Cell
//! values are mapped into [`BINS`] coarse value bins by the monotone
//! [`value_bin`] function; each tile keeps a 64-bit membership mask of the
//! bins its cells fall into, and a summary mask — the OR of every tile
//! mask — sits on top so a predicate that matches no bin of the whole
//! object prunes all tiles with a single AND.

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{IndexError, Result};

/// Number of value bins (one bit each in a tile mask).
pub const BINS: u32 = 64;

/// Maps a cell value to its bin, or `None` for NaN (NaN fails every
/// comparison predicate, so it never needs to make a tile a candidate).
///
/// The binning is monotone (`v <= w` implies `value_bin(v) <= value_bin(w)`)
/// and value-independent, so masks can be built tile-by-tile in one pass
/// with no cross-tile coordination:
///
/// * bins 0..=25 — negative values by descending magnitude (bin 0 holds
///   `v <= -2^25`, bin 25 holds `-2^-6 < v < 0`... approximately: the
///   exponent of `-v` is clamped to `[-6, 25]`);
/// * bin 31 — exactly zero;
/// * bins 32..=63 — positive values by ascending magnitude (exponent of
///   `v` clamped to `[-6, 25]`, so bin 63 holds `v >= 2^25`).
#[must_use]
pub fn value_bin(v: f64) -> Option<u32> {
    if v.is_nan() {
        return None;
    }
    Some(if v == 0.0 {
        31
    } else if v > 0.0 {
        let e = v.log2().floor().clamp(-6.0, 25.0) as i64;
        (32 + (e + 6)) as u32
    } else {
        let e = (-v).log2().floor().clamp(-6.0, 25.0) as i64;
        (25 - e) as u32
    })
}

/// Mask of every bin that could hold a value `>= v` (or `> v` — the bin
/// granularity cannot distinguish the two, so both use the closed form).
#[must_use]
pub fn bins_ge(v: f64) -> u64 {
    match value_bin(v) {
        // All bits from bin(v) upward.
        Some(b) => !0u64 << b,
        None => 0,
    }
}

/// Mask of every bin that could hold a value `<= v` (or `< v`).
#[must_use]
pub fn bins_le(v: f64) -> u64 {
    match value_bin(v) {
        // All bits from 0 through bin(v).
        Some(b) if b == BINS - 1 => !0u64,
        Some(b) => (1u64 << (b + 1)) - 1,
        None => 0,
    }
}

/// Mask of the single bin holding `v`.
#[must_use]
pub fn bins_eq(v: f64) -> u64 {
    match value_bin(v) {
        Some(b) => 1u64 << b,
        None => 0,
    }
}

/// Two-level bitmap index: a per-tile bin-membership mask (indexed by the
/// tile's position in the object's tile list) under a summary mask that is
/// the OR of all tile masks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitmapIndex {
    summary: u64,
    tile_masks: Vec<u64>,
}

impl BitmapIndex {
    /// Builds the index from per-tile masks (position-aligned with the
    /// object's tile list).
    #[must_use]
    pub fn from_masks(tile_masks: Vec<u64>) -> Self {
        let summary = tile_masks.iter().fold(0, |acc, m| acc | m);
        BitmapIndex {
            summary,
            tile_masks,
        }
    }

    /// The OR of every tile mask — the top level of the hierarchy. A
    /// predicate whose candidate bins miss this mask matches no tile.
    #[must_use]
    pub fn summary(&self) -> u64 {
        self.summary
    }

    /// Number of tile masks held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tile_masks.len()
    }

    /// Whether the index holds no tile masks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tile_masks.is_empty()
    }

    /// The bin mask of the tile at `pos`. Out-of-range positions return the
    /// all-ones mask — "unknown", which never prunes — so a stale index can
    /// only cost performance, never correctness.
    #[must_use]
    pub fn tile_mask(&self, pos: usize) -> u64 {
        self.tile_masks.get(pos).copied().unwrap_or(!0)
    }

    /// Serializes the index for blob storage.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().to_string_compact().into_bytes()
    }

    /// Deserializes an index written by [`BitmapIndex::to_bytes`].
    ///
    /// # Errors
    /// [`IndexError::Corrupt`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| IndexError::Corrupt(format!("bitmap index not UTF-8: {e}")))?;
        let json = Json::parse(text)
            .map_err(|e| IndexError::Corrupt(format!("bitmap index JSON: {e}")))?;
        Self::from_json(&json).map_err(|e| IndexError::Corrupt(format!("bitmap index shape: {e}")))
    }
}

impl ToJson for BitmapIndex {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("summary", self.summary.to_json()),
            ("tile_masks", self.tile_masks.to_json()),
        ])
    }
}

impl FromJson for BitmapIndex {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(BitmapIndex {
            summary: u64::from_json(v.field("summary")?)?,
            tile_masks: Vec::from_json(v.field("tile_masks")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_monotone() {
        let samples = [
            f64::NEG_INFINITY,
            -1e12,
            -40_000_000.0,
            -33_554_432.0,
            -1000.0,
            -1.5,
            -1.0,
            -0.01,
            -1e-9,
            0.0,
            1e-9,
            0.01,
            0.015_625,
            1.0,
            1.5,
            1000.0,
            33_554_432.0,
            40_000_000.0,
            1e12,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            let (a, b) = (value_bin(w[0]).unwrap(), value_bin(w[1]).unwrap());
            assert!(a <= b, "bin({}) = {a} > bin({}) = {b}", w[0], w[1]);
        }
        for v in samples {
            assert!(value_bin(v).unwrap() < BINS);
        }
        assert_eq!(value_bin(0.0), Some(31));
        assert_eq!(value_bin(f64::NAN), None);
    }

    #[test]
    fn candidate_masks_cover_their_values() {
        for &v in &[-100.0, -0.5, 0.0, 0.5, 7.0, 1e9] {
            let bin = value_bin(v).unwrap();
            assert_ne!(bins_ge(v) & (1 << bin), 0, "ge misses bin of {v}");
            assert_ne!(bins_le(v) & (1 << bin), 0, "le misses bin of {v}");
            assert_eq!(bins_eq(v), 1 << bin);
            // ge and le together cover everything and overlap only at v's bin.
            assert_eq!(bins_ge(v) | bins_le(v), !0);
            assert_eq!(bins_ge(v) & bins_le(v), 1 << bin);
        }
        // NaN matches nothing.
        assert_eq!(bins_ge(f64::NAN), 0);
        assert_eq!(bins_le(f64::NAN), 0);
        assert_eq!(bins_eq(f64::NAN), 0);
    }

    #[test]
    fn summary_is_or_of_tile_masks() {
        let idx = BitmapIndex::from_masks(vec![0b0011, 0b0100, 0]);
        assert_eq!(idx.summary(), 0b0111);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.tile_mask(0), 0b0011);
        assert_eq!(idx.tile_mask(2), 0);
        // Out of range is conservatively "unknown".
        assert_eq!(idx.tile_mask(3), !0);
    }

    #[test]
    fn bytes_round_trip() {
        let idx = BitmapIndex::from_masks(vec![u64::MAX, 0, 0xDEAD_BEEF]);
        let back = BitmapIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back, idx);
        assert!(BitmapIndex::from_bytes(b"\xff\xfe").is_err());
        assert!(BitmapIndex::from_bytes(b"{\"summary\": 1}").is_err());
        assert!(BitmapIndex::from_bytes(b"not json").is_err());
    }

    #[test]
    fn empty_index_is_empty() {
        let idx = BitmapIndex::from_masks(Vec::new());
        assert!(idx.is_empty());
        assert_eq!(idx.summary(), 0);
        let back = BitmapIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back, idx);
    }
}
