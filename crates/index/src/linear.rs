//! Linear tile directory — the ablation baseline for the R+-tree.
//!
//! A flat list of `(domain, payload)` pairs scanned in full on every search.
//! "Node" accounting treats the directory as pages of `fanout` entries so
//! `t_ix` comparisons against the tree are apples-to-apples.

use tilestore_geometry::Domain;
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{IndexError, Result};
use crate::rplus::{SearchResult, DEFAULT_FANOUT};

/// A linear-scan tile directory.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearIndex {
    dim: usize,
    fanout: usize,
    entries: Vec<(Domain, u64)>,
}

impl ToJson for LinearIndex {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dim", self.dim.to_json()),
            ("fanout", self.fanout.to_json()),
            ("entries", self.entries.to_json()),
        ])
    }
}

impl FromJson for LinearIndex {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(LinearIndex {
            dim: usize::from_json(v.field("dim")?)?,
            fanout: usize::from_json(v.field("fanout")?)?,
            entries: Vec::from_json(v.field("entries")?)?,
        })
    }
}

impl LinearIndex {
    /// An empty directory for `dim`-dimensional entries.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        LinearIndex {
            dim,
            fanout: DEFAULT_FANOUT,
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds an entry.
    ///
    /// # Errors
    /// [`IndexError::DimensionMismatch`] for a wrong-dimensional domain.
    pub fn insert(&mut self, domain: Domain, payload: u64) -> Result<()> {
        if domain.dim() != self.dim {
            return Err(IndexError::DimensionMismatch {
                index: self.dim,
                entry: domain.dim(),
            });
        }
        self.entries.push((domain, payload));
        Ok(())
    }

    /// Scans the whole directory for entries intersecting `region`.
    #[must_use]
    pub fn search(&self, region: &Domain) -> SearchResult {
        let hits = self
            .entries
            .iter()
            .filter(|(d, _)| d.intersects(region))
            .map(|&(_, p)| p)
            .collect();
        // Every "page" of the directory is visited.
        let nodes_visited = (self.entries.len() as u64)
            .div_ceil(self.fanout as u64)
            .max(1);
        SearchResult {
            hits,
            nodes_visited,
        }
    }

    /// Removes the entry with exactly this domain and payload.
    pub fn remove(&mut self, domain: &Domain, payload: u64) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|(d, p)| !(d == domain && *p == payload));
        self.entries.len() != before
    }

    /// Visits every entry.
    pub fn for_each<F: FnMut(&Domain, u64)>(&self, mut f: F) {
        for (d, p) in &self.entries {
            f(d, *p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn scan_finds_intersections() {
        let mut ix = LinearIndex::new(2);
        ix.insert(d("[0:4,0:4]"), 1).unwrap();
        ix.insert(d("[5:9,0:4]"), 2).unwrap();
        ix.insert(d("[0:4,5:9]"), 3).unwrap();
        let r = ix.search(&d("[4:5,0:1]"));
        let mut hits = r.hits;
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(r.nodes_visited, 1);
    }

    #[test]
    fn node_accounting_scales_with_size() {
        let mut ix = LinearIndex::new(1);
        for i in 0..100 {
            ix.insert(d(&format!("[{}:{}]", i * 10, i * 10 + 9)), i as u64)
                .unwrap();
        }
        let r = ix.search(&d("[0:5]"));
        assert_eq!(r.hits, vec![0]);
        assert_eq!(r.nodes_visited, (100u64).div_ceil(DEFAULT_FANOUT as u64));
    }

    #[test]
    fn remove_and_dimension_check() {
        let mut ix = LinearIndex::new(2);
        assert!(ix.insert(d("[0:1]"), 0).is_err());
        ix.insert(d("[0:1,0:1]"), 7).unwrap();
        assert!(ix.remove(&d("[0:1,0:1]"), 7));
        assert!(!ix.remove(&d("[0:1,0:1]"), 7));
        assert!(ix.is_empty());
    }
}
