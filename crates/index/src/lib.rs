//! Multidimensional tile index.
//!
//! §5 of the paper stores, per MDD object, "an index on tiles" that returns
//! the tiles intersected by a query region. [`RPlusTree`] is the
//! R+-tree-like structure the paper builds on (reference \[9\]); tiles are
//! disjoint, so leaf entries never overlap. [`LinearIndex`] is a flat
//! directory used as the ablation baseline for the `t_ix` measurements.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bitmap;
mod error;
mod linear;
mod rplus;

pub use bitmap::{bins_eq, bins_ge, bins_le, value_bin, BitmapIndex, BINS};
pub use error::{IndexError, Result};
pub use linear::LinearIndex;
pub use rplus::{RPlusTree, SearchResult, DEFAULT_FANOUT};
