//! Lock-free metrics: counters, gauges and fixed log2-bucket histograms,
//! collected in a [`MetricsRegistry`].
//!
//! Every update is a handful of relaxed atomic operations — no locks, no
//! allocation — so the instruments are safe to hit on the query hot path.
//! The registry itself uses a mutex only for registration (get-or-create by
//! name) and snapshotting, never per update: callers cache the returned
//! `Arc` handles.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tilestore_testkit::{Json, ToJson};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. value 0 → bucket 0, value `v > 0` → bucket `64 - v.leading_zeros()`.
/// Bucket `i > 0` therefore spans `[2^(i-1), 2^i - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-size log2-bucket histogram of `u64` samples.
///
/// Recording is lock-free: one bucket increment plus count/sum/min/max
/// updates, all relaxed atomics. Quantiles are approximated from the bucket
/// boundaries (exact to within a factor of 2, like HdrHistogram's coarsest
/// setting) — good enough to spot latency regressions without per-sample
/// storage.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a sample (its bit length).
#[must_use]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound of bucket `i` (inclusive).
#[must_use]
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes an immutable summary.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, out) in self.buckets.iter().zip(buckets.iter_mut()) {
            *out = b.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets every bucket and statistic.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An immutable summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the inclusive upper bound of the bucket holding
    /// the `q`-quantile sample (clamped to the observed max).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).floor() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "n={} min={} p50={} p95={} max={} mean={:.1}",
            self.count,
            self.min,
            self.quantile(0.5),
            self.quantile(0.95),
            self.max,
            self.mean()
        )
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        // Sparse bucket encoding: [bit_length, count] pairs for non-empty
        // buckets keeps reports compact.
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Array(vec![Json::UInt(i as u64), Json::UInt(n)]))
            .collect();
        Json::obj(vec![
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
            ("mean", self.mean().to_json()),
            ("p50", self.quantile(0.5).to_json()),
            ("p95", self.quantile(0.95).to_json()),
            ("p99", self.quantile(0.99).to_json()),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

/// A named collection of metrics. Registration is get-or-create by name;
/// the returned handles are shared, so repeated lookups observe the same
/// instrument.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut list = list.lock().unwrap();
    if let Some((_, m)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(m);
    }
    let m = Arc::new(T::default());
    list.push((name.to_string(), Arc::clone(&m)));
    m
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Snapshot of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Resets every registered metric (instruments stay registered).
    pub fn reset(&self) {
        for (_, c) in self.counters.lock().unwrap().iter() {
            c.reset();
        }
        for (_, g) in self.gauges.lock().unwrap().iter() {
            g.reset();
        }
        for (_, h) in self.histograms.lock().unwrap().iter() {
            h.reset();
        }
    }
}

/// A point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        let obj = |fields: Vec<(String, Json)>| Json::Object(fields);
        Json::obj(vec![
            (
                "counters",
                obj(self
                    .counters
                    .iter()
                    .map(|(n, v)| (n.clone(), v.to_json()))
                    .collect()),
            ),
            (
                "gauges",
                obj(self
                    .gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), v.to_json()))
                    .collect()),
            ),
            (
                "histograms",
                obj(self
                    .histograms
                    .iter()
                    .map(|(n, h)| (n.clone(), h.to_json()))
                    .collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_statistics() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
        // p50 falls in the bucket of 3 → upper bound 3.
        assert_eq!(s.quantile(0.5), 3);
        // Rank 3 of 5 is the sample 100 → bucket upper bound 127.
        assert_eq!(s.quantile(0.95), 127);
        // q=1.0 reaches the last bucket, clamped to the observed max.
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.summary().contains("n=5"), "{}", s.summary());
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_reset_clears_all() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert!(s.buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn registry_get_or_create_shares_instruments() {
        let r = MetricsRegistry::new();
        r.counter("queries").inc();
        r.counter("queries").inc();
        assert_eq!(r.counter("queries").get(), 2);
        r.histogram("latency").record(8);
        r.gauge("cached").set(3);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("queries".to_string(), 2)]);
        assert_eq!(snap.gauges, vec![("cached".to_string(), 3)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
        r.reset();
        assert_eq!(r.counter("queries").get(), 0);
        assert_eq!(r.histogram("latency").count(), 0);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let r = MetricsRegistry::new();
        r.counter("a").add(3);
        r.histogram("h").record(5);
        let json = r.snapshot().to_json().to_string_compact();
        assert!(json.contains("\"a\":3"), "{json}");
        assert!(json.contains("\"p95\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
        // Parses back as valid JSON.
        assert!(tilestore_testkit::Json::parse(&json).is_ok());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        let h = r.histogram("v");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.snapshot().count, 8000);
    }
}
