//! Persistent access recorder: appends each executed query's intersected
//! domain to a JSONL log file so statistic tiling can later run from real
//! observed history.
//!
//! Each line is a compact JSON object `{"object": <name>, "region": <domain>}`
//! where the region is the engine's textual domain form (`[lo:hi,lo:hi]`).
//! The recorder is append-only and flushes after every record, so the log
//! survives crashes mid-workload and can be read back by any process.
//!
//! The log is size-bounded: when the live segment exceeds its byte cap it
//! rotates to `access.log.1` (existing rotated segments shift up, the
//! oldest beyond [`MAX_SEGMENTS`] is dropped), so a long-running server's
//! history occupies at most `(MAX_SEGMENTS + 1) * cap` bytes on disk.
//! Readers aggregate across every surviving segment, oldest first.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use tilestore_testkit::{Json, ToJson};

/// Rotated segments kept besides the live file (`access.log.1` is the most
/// recently rotated, `access.log.4` the oldest still readable).
pub const MAX_SEGMENTS: usize = 4;

/// Default byte cap of the live segment before it rotates.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// One aggregated entry read back from an access log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedAccess {
    /// Name of the stored MDD object.
    pub object: String,
    /// Textual form of the accessed region (`[lo:hi,...]`).
    pub region: String,
    /// How many times this exact region was accessed.
    pub count: u64,
}

/// The live segment's writer plus its current size, guarded together so a
/// rotation decision and the write it gates are atomic.
#[derive(Debug)]
struct LiveSegment {
    writer: BufWriter<File>,
    bytes: u64,
}

/// Appends query accesses to a JSONL file and reads them back aggregated.
#[derive(Debug)]
pub struct AccessRecorder {
    path: PathBuf,
    live: Mutex<LiveSegment>,
    segment_bytes: u64,
}

/// Locks the live segment, recovering from poisoning: one panicking request
/// handler must not permanently kill query logging for the whole process.
/// The buffered writer only ever holds whole flushed lines (every `record`
/// flushes), so the state behind a poisoned lock is still well-formed.
fn lock(m: &Mutex<LiveSegment>) -> MutexGuard<'_, LiveSegment> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Path of rotated segment `i` (1-based; 1 = most recently rotated).
fn segment_path(path: &Path, i: usize) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".{i}"));
    PathBuf::from(name)
}

impl AccessRecorder {
    /// Opens (or creates) the log at `path` in append mode with the default
    /// segment cap.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with_limit(path, DEFAULT_SEGMENT_BYTES)
    }

    /// Opens (or creates) the log at `path`, rotating the live segment once
    /// it exceeds `segment_bytes`.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn open_with_limit(path: impl AsRef<Path>, segment_bytes: u64) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(AccessRecorder {
            path,
            live: Mutex::new(LiveSegment {
                writer: BufWriter::new(file),
                bytes,
            }),
            segment_bytes: segment_bytes.max(1),
        })
    }

    /// Path of the backing log file (the live segment).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Shifts rotated segments up by one (dropping the oldest), moves the
    /// full live file to `.1` and starts a fresh live segment.
    fn rotate(&self, live: &mut LiveSegment) -> std::io::Result<()> {
        live.writer.flush()?;
        let oldest = segment_path(&self.path, MAX_SEGMENTS);
        if oldest.exists() {
            std::fs::remove_file(&oldest)?;
        }
        for i in (1..MAX_SEGMENTS).rev() {
            let from = segment_path(&self.path, i);
            if from.exists() {
                std::fs::rename(&from, segment_path(&self.path, i + 1))?;
            }
        }
        std::fs::rename(&self.path, segment_path(&self.path, 1))?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        live.writer = BufWriter::new(file);
        live.bytes = 0;
        Ok(())
    }

    /// Appends one access of `region` on `object` and flushes, rotating
    /// first if the live segment is over its byte cap.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the write fails.
    pub fn record(&self, object: &str, region: &str) -> std::io::Result<()> {
        let line = Json::obj(vec![
            ("object", Json::Str(object.to_string())),
            ("region", Json::Str(region.to_string())),
        ])
        .to_string_compact();
        let mut live = lock(&self.live);
        if live.bytes > 0 && live.bytes + line.len() as u64 + 1 > self.segment_bytes {
            self.rotate(&mut live)?;
        }
        writeln!(live.writer, "{line}")?;
        live.bytes += line.len() as u64 + 1;
        live.writer.flush()
    }

    /// Reads the whole log back (rotated segments oldest first, then the
    /// live segment), aggregated as (object, region) → count, in first-seen
    /// order. Malformed lines are skipped.
    ///
    /// # Errors
    /// Returns the underlying I/O error if a segment cannot be read.
    pub fn entries(&self) -> std::io::Result<Vec<LoggedAccess>> {
        lock(&self.live).writer.flush()?;
        let mut out: Vec<LoggedAccess> = Vec::new();
        let mut paths: Vec<PathBuf> = (1..=MAX_SEGMENTS)
            .rev()
            .map(|i| segment_path(&self.path, i))
            .filter(|p| p.exists())
            .collect();
        paths.push(self.path.clone());
        for path in paths {
            let file = File::open(&path)?;
            for line in BufReader::new(file).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(v) = Json::parse(&line) else { continue };
                let (Some(object), Some(region)) = (
                    v.get("object").and_then(Json::as_str),
                    v.get("region").and_then(Json::as_str),
                ) else {
                    continue;
                };
                if let Some(e) = out
                    .iter_mut()
                    .find(|e| e.object == object && e.region == region)
                {
                    e.count += 1;
                } else {
                    out.push(LoggedAccess {
                        object: object.to_string(),
                        region: region.to_string(),
                        count: 1,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Like [`AccessRecorder::entries`], restricted to one object.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be read.
    pub fn entries_for(&self, object: &str) -> std::io::Result<Vec<LoggedAccess>> {
        Ok(self
            .entries()?
            .into_iter()
            .filter(|e| e.object == object)
            .collect())
    }

    /// Total number of recorded accesses (all objects).
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be read.
    pub fn total_accesses(&self) -> std::io::Result<u64> {
        Ok(self.entries()?.iter().map(|e| e.count).sum())
    }

    /// Truncates the log — every rotated segment included — e.g. after the
    /// history has been consumed by a re-tiling pass.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be truncated.
    pub fn clear(&self) -> std::io::Result<()> {
        let mut live = lock(&self.live);
        for i in 1..=MAX_SEGMENTS {
            let seg = segment_path(&self.path, i);
            if seg.exists() {
                std::fs::remove_file(&seg)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        live.writer = BufWriter::new(file);
        live.bytes = 0;
        Ok(())
    }
}

impl ToJson for LoggedAccess {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("object", Json::Str(self.object.clone())),
            ("region", Json::Str(self.region.clone())),
            ("count", self.count.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilestore_testkit::tempdir;

    #[test]
    fn records_and_reads_back_aggregated() {
        let dir = tempdir().unwrap();
        let rec = AccessRecorder::open(dir.path().join("access.log")).unwrap();
        rec.record("m", "[0:9,0:9]").unwrap();
        rec.record("m", "[0:9,0:9]").unwrap();
        rec.record("m", "[50:59,50:59]").unwrap();
        rec.record("other", "[0:9,0:9]").unwrap();

        let entries = rec.entries_for("m").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].region, "[0:9,0:9]");
        assert_eq!(entries[0].count, 2);
        assert_eq!(entries[1].region, "[50:59,50:59]");
        assert_eq!(entries[1].count, 1);
        assert_eq!(rec.total_accesses().unwrap(), 4);
    }

    #[test]
    fn log_survives_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("access.log");
        {
            let rec = AccessRecorder::open(&path).unwrap();
            rec.record("m", "[0:3]").unwrap();
        }
        let rec = AccessRecorder::open(&path).unwrap();
        rec.record("m", "[0:3]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 2);
    }

    #[test]
    fn clear_truncates_and_keeps_recording() {
        let dir = tempdir().unwrap();
        let rec = AccessRecorder::open(dir.path().join("access.log")).unwrap();
        rec.record("m", "[0:3]").unwrap();
        rec.clear().unwrap();
        assert!(rec.entries().unwrap().is_empty());
        rec.record("m", "[4:7]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].region, "[4:7]");
    }

    #[test]
    fn recorder_survives_lock_poisoning() {
        let dir = tempdir().unwrap();
        let rec = AccessRecorder::open(dir.path().join("access.log")).unwrap();
        rec.record("m", "[0:1]").unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = rec.live.lock().unwrap();
            panic!("handler died mid-record");
        }));
        assert!(rec.live.is_poisoned());
        // Recording keeps working after a panicking holder.
        rec.record("m", "[0:1]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 2);
    }

    #[test]
    fn rotation_caps_total_size_and_drops_oldest() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("access.log");
        // Tiny cap: every record lands in its own segment, so recording
        // more than MAX_SEGMENTS + 1 regions must drop the oldest.
        let rec = AccessRecorder::open_with_limit(&path, 8).unwrap();
        for i in 0..10 {
            rec.record("m", &format!("[{i}:{i}]")).unwrap();
        }
        // Live segment + at most MAX_SEGMENTS rotated files exist.
        assert!(path.exists());
        for i in 1..=MAX_SEGMENTS {
            assert!(segment_path(&path, i).exists(), "segment {i} missing");
        }
        assert!(!segment_path(&path, MAX_SEGMENTS + 1).exists());
        // Readers see the surviving tail, oldest first, earliest dropped.
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), MAX_SEGMENTS + 1);
        assert_eq!(entries[0].region, "[5:5]");
        assert_eq!(entries.last().unwrap().region, "[9:9]");
    }

    #[test]
    fn small_logs_never_rotate() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("access.log");
        let rec = AccessRecorder::open(&path).unwrap();
        for _ in 0..50 {
            rec.record("m", "[0:9,0:9]").unwrap();
        }
        assert!(!segment_path(&path, 1).exists());
        assert_eq!(rec.total_accesses().unwrap(), 50);
    }

    #[test]
    fn clear_removes_rotated_segments_too() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("access.log");
        let rec = AccessRecorder::open_with_limit(&path, 8).unwrap();
        for i in 0..6 {
            rec.record("m", &format!("[{i}:{i}]")).unwrap();
        }
        assert!(segment_path(&path, 1).exists());
        rec.clear().unwrap();
        assert!(rec.entries().unwrap().is_empty());
        assert!(!segment_path(&path, 1).exists());
        rec.record("m", "[4:7]").unwrap();
        assert_eq!(rec.total_accesses().unwrap(), 1);
    }

    #[test]
    fn rotation_survives_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("access.log");
        {
            let rec = AccessRecorder::open_with_limit(&path, 8).unwrap();
            rec.record("m", "[0:0]").unwrap();
            rec.record("m", "[1:1]").unwrap();
        }
        let rec = AccessRecorder::open_with_limit(&path, 8).unwrap();
        rec.record("m", "[2:2]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].region, "[0:0]");
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("access.log");
        std::fs::write(&path, "not json\n{\"object\":\"m\"}\n").unwrap();
        let rec = AccessRecorder::open(&path).unwrap();
        rec.record("m", "[0:1]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].region, "[0:1]");
    }
}
