//! Persistent access recorder: appends each executed query's intersected
//! domain to a JSONL log file so statistic tiling can later run from real
//! observed history.
//!
//! Each line is a compact JSON object `{"object": <name>, "region": <domain>}`
//! where the region is the engine's textual domain form (`[lo:hi,lo:hi]`).
//! The recorder is append-only and flushes after every record, so the log
//! survives crashes mid-workload and can be read back by any process.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use tilestore_testkit::{Json, ToJson};

/// One aggregated entry read back from an access log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedAccess {
    /// Name of the stored MDD object.
    pub object: String,
    /// Textual form of the accessed region (`[lo:hi,...]`).
    pub region: String,
    /// How many times this exact region was accessed.
    pub count: u64,
}

/// Appends query accesses to a JSONL file and reads them back aggregated.
#[derive(Debug)]
pub struct AccessRecorder {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

/// Locks the writer, recovering from poisoning: one panicking request
/// handler must not permanently kill query logging for the whole process.
/// The buffered writer only ever holds whole flushed lines (every `record`
/// flushes), so the state behind a poisoned lock is still well-formed.
fn lock(m: &Mutex<BufWriter<File>>) -> MutexGuard<'_, BufWriter<File>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl AccessRecorder {
    /// Opens (or creates) the log at `path` in append mode.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(AccessRecorder {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Path of the backing log file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one access of `region` on `object` and flushes.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the write fails.
    pub fn record(&self, object: &str, region: &str) -> std::io::Result<()> {
        let line = Json::obj(vec![
            ("object", Json::Str(object.to_string())),
            ("region", Json::Str(region.to_string())),
        ])
        .to_string_compact();
        let mut w = lock(&self.writer);
        writeln!(w, "{line}")?;
        w.flush()
    }

    /// Reads the whole log back, aggregated as (object, region) → count,
    /// in first-seen order. Malformed lines are skipped.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be read.
    pub fn entries(&self) -> std::io::Result<Vec<LoggedAccess>> {
        lock(&self.writer).flush()?;
        let file = File::open(&self.path)?;
        let mut out: Vec<LoggedAccess> = Vec::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let Ok(v) = Json::parse(&line) else { continue };
            let (Some(object), Some(region)) = (
                v.get("object").and_then(Json::as_str),
                v.get("region").and_then(Json::as_str),
            ) else {
                continue;
            };
            if let Some(e) = out
                .iter_mut()
                .find(|e| e.object == object && e.region == region)
            {
                e.count += 1;
            } else {
                out.push(LoggedAccess {
                    object: object.to_string(),
                    region: region.to_string(),
                    count: 1,
                });
            }
        }
        Ok(out)
    }

    /// Like [`AccessRecorder::entries`], restricted to one object.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be read.
    pub fn entries_for(&self, object: &str) -> std::io::Result<Vec<LoggedAccess>> {
        Ok(self
            .entries()?
            .into_iter()
            .filter(|e| e.object == object)
            .collect())
    }

    /// Total number of recorded accesses (all objects).
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be read.
    pub fn total_accesses(&self) -> std::io::Result<u64> {
        Ok(self.entries()?.iter().map(|e| e.count).sum())
    }

    /// Truncates the log (e.g. after the history has been consumed by a
    /// re-tiling pass).
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be truncated.
    pub fn clear(&self) -> std::io::Result<()> {
        let mut w = lock(&self.writer);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        *w = BufWriter::new(file);
        Ok(())
    }
}

impl ToJson for LoggedAccess {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("object", Json::Str(self.object.clone())),
            ("region", Json::Str(self.region.clone())),
            ("count", self.count.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilestore_testkit::tempdir;

    #[test]
    fn records_and_reads_back_aggregated() {
        let dir = tempdir().unwrap();
        let rec = AccessRecorder::open(dir.path().join("access.log")).unwrap();
        rec.record("m", "[0:9,0:9]").unwrap();
        rec.record("m", "[0:9,0:9]").unwrap();
        rec.record("m", "[50:59,50:59]").unwrap();
        rec.record("other", "[0:9,0:9]").unwrap();

        let entries = rec.entries_for("m").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].region, "[0:9,0:9]");
        assert_eq!(entries[0].count, 2);
        assert_eq!(entries[1].region, "[50:59,50:59]");
        assert_eq!(entries[1].count, 1);
        assert_eq!(rec.total_accesses().unwrap(), 4);
    }

    #[test]
    fn log_survives_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("access.log");
        {
            let rec = AccessRecorder::open(&path).unwrap();
            rec.record("m", "[0:3]").unwrap();
        }
        let rec = AccessRecorder::open(&path).unwrap();
        rec.record("m", "[0:3]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 2);
    }

    #[test]
    fn clear_truncates_and_keeps_recording() {
        let dir = tempdir().unwrap();
        let rec = AccessRecorder::open(dir.path().join("access.log")).unwrap();
        rec.record("m", "[0:3]").unwrap();
        rec.clear().unwrap();
        assert!(rec.entries().unwrap().is_empty());
        rec.record("m", "[4:7]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].region, "[4:7]");
    }

    #[test]
    fn recorder_survives_lock_poisoning() {
        let dir = tempdir().unwrap();
        let rec = AccessRecorder::open(dir.path().join("access.log")).unwrap();
        rec.record("m", "[0:1]").unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = rec.writer.lock().unwrap();
            panic!("handler died mid-record");
        }));
        assert!(rec.writer.is_poisoned());
        // Recording keeps working after a panicking holder.
        rec.record("m", "[0:1]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 2);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("access.log");
        std::fs::write(&path, "not json\n{\"object\":\"m\"}\n").unwrap();
        let rec = AccessRecorder::open(&path).unwrap();
        rec.record("m", "[0:1]").unwrap();
        let entries = rec.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].region, "[0:1]");
    }
}
