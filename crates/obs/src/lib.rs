//! Observability layer for the tile store: structured tracing spans,
//! a lock-free metrics registry, and a persistent query-access recorder
//! that feeds statistic tiling.
//!
//! The crate is dependency-free apart from the in-tree testkit (for JSON
//! serialization). Three facilities:
//!
//! - [`trace`]: nestable spans/events in a bounded ring buffer, JSONL export.
//! - [`mod@metrics`]: atomic counters, gauges and log2-bucket histograms.
//! - [`recorder`]: an append-only JSONL log of executed query regions,
//!   persisted alongside the catalog, replayable into `StatisticTiling`.
//!
//! Process-wide singletons are exposed through [`metrics()`] and [`tracer()`];
//! hot paths use the pre-resolved [`hot()`] handles so an instrument update
//! never takes the registry lock.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use recorder::{AccessRecorder, LoggedAccess, DEFAULT_SEGMENT_BYTES, MAX_SEGMENTS};
pub use trace::{
    current_request_id, request_scope, EventKind, RequestScope, SpanGuard, TraceEvent, Tracer,
};

use std::sync::{Arc, OnceLock};

/// The process-wide metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// The process-wide tracer (disabled until [`Tracer::enable`] is called).
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::new)
}

/// Pre-resolved handles to the hot-path instruments, registered once in the
/// global registry. Updating through these is purely atomic — no name lookup,
/// no registry lock — so storage/index/engine code can instrument per-page
/// and per-tile operations without measurable overhead.
#[derive(Debug)]
pub struct HotMetrics {
    /// Pages read from the backing store.
    pub pages_read: Arc<Counter>,
    /// Pages written to the backing store.
    pub pages_written: Arc<Counter>,
    /// Blob (tile payload) reads.
    pub blob_reads: Arc<Counter>,
    /// Blob (tile payload) writes.
    pub blob_writes: Arc<Counter>,
    /// Buffer-pool page hits.
    pub cache_hits: Arc<Counter>,
    /// Buffer-pool page misses.
    pub cache_misses: Arc<Counter>,
    /// Range queries executed.
    pub queries: Arc<Counter>,
    /// End-to-end query latency in nanoseconds.
    pub query_latency_ns: Arc<Histogram>,
    /// Tiles touched per query.
    pub query_tiles: Arc<Histogram>,
    /// Serialized tile size in bytes.
    pub tile_bytes: Arc<Histogram>,
    /// R+-tree nodes visited per index search.
    pub index_nodes: Arc<Histogram>,
    /// Tiling partitions computed (any strategy).
    pub partitions: Arc<Counter>,
    /// Durable catalog commits (atomic rename completed).
    pub catalog_commits: Arc<Counter>,
    /// Orphaned pages returned to the free list by recovery/fsck.
    pub orphaned_pages_reclaimed: Arc<Counter>,
    /// Page frames that failed checksum verification on read.
    pub checksum_failures: Arc<Counter>,
    /// Snapshots currently live (begun but not yet dropped).
    pub snapshots_active: Arc<Gauge>,
    /// Time writers spend inside the exclusive catalog-pointer swap, in
    /// nanoseconds — the *only* section readers can ever wait behind.
    pub writer_swap_ns: Arc<Histogram>,
    /// Engine mutexes recovered from poisoning (a holder panicked).
    pub lock_poisoned: Arc<Counter>,
    /// Tiles skipped by synopsis/bitmap value-predicate pruning (their
    /// blobs were never fetched).
    pub tiles_pruned: Arc<Counter>,
    /// Buffer-pool shard lock acquisitions that had to block because
    /// another thread held the shard (`try_lock` failed first).
    pub pool_shard_contention: Arc<Counter>,
    /// `unpin_page` calls with no outstanding pin — a pin-leak or
    /// double-unpin upstream (asserts in debug builds).
    pub pin_underflow: Arc<Counter>,
    /// Physically consecutive page runs fetched with one positioned read
    /// instead of one read per page.
    pub runs_coalesced: Arc<Counter>,
    /// Payload bytes fetched by coalesced run reads.
    pub readahead_bytes: Arc<Counter>,
}

impl HotMetrics {
    fn resolve(reg: &MetricsRegistry) -> Self {
        HotMetrics {
            pages_read: reg.counter("storage.pages_read"),
            pages_written: reg.counter("storage.pages_written"),
            blob_reads: reg.counter("storage.blob_reads"),
            blob_writes: reg.counter("storage.blob_writes"),
            cache_hits: reg.counter("storage.cache_hits"),
            cache_misses: reg.counter("storage.cache_misses"),
            queries: reg.counter("engine.queries"),
            query_latency_ns: reg.histogram("engine.query_latency_ns"),
            query_tiles: reg.histogram("engine.query_tiles"),
            tile_bytes: reg.histogram("storage.tile_bytes"),
            index_nodes: reg.histogram("index.nodes_visited"),
            partitions: reg.counter("tiling.partitions"),
            catalog_commits: reg.counter("engine.catalog_commits"),
            orphaned_pages_reclaimed: reg.counter("storage.orphaned_pages_reclaimed"),
            checksum_failures: reg.counter("storage.checksum_failures"),
            snapshots_active: reg.gauge("engine.snapshots_active"),
            writer_swap_ns: reg.histogram("engine.writer_swap_ns"),
            lock_poisoned: reg.counter("engine.lock_poisoned"),
            tiles_pruned: reg.counter("engine.tiles_pruned"),
            pool_shard_contention: reg.counter("pool.shard_contention"),
            pin_underflow: reg.counter("engine.pin_underflow"),
            runs_coalesced: reg.counter("io.runs_coalesced"),
            readahead_bytes: reg.counter("io.readahead_bytes"),
        }
    }

    /// The buffer-pool hit ratio in `[0, 1]` (0 when no lookups yet).
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits = self.cache_hits.get();
        let total = hits + self.cache_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Pre-resolved hot-path instrument handles backed by [`metrics()`].
pub fn hot() -> &'static HotMetrics {
    static HOT: OnceLock<HotMetrics> = OnceLock::new();
    HOT.get_or_init(|| HotMetrics::resolve(metrics()))
}

/// Compile-time thread-safety assertions: every observability facility is
/// shared across the server's connection threads and the executor's workers,
/// so losing `Send + Sync` on any of them is a build error, not a runtime
/// surprise.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<HotMetrics>();
    assert_send_sync::<Tracer>();
    assert_send_sync::<AccessRecorder>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_are_shared() {
        hot().queries.inc();
        let before = metrics()
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == "engine.queries")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(before >= 1);
        hot().queries.inc();
        let after = metrics()
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == "engine.queries")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(after > before);
    }

    #[test]
    fn cache_hit_ratio_bounds() {
        // Global counters are shared with other tests; only assert bounds.
        let r = hot().cache_hit_ratio();
        assert!((0.0..=1.0).contains(&r));
        hot().cache_hits.inc();
        assert!(hot().cache_hit_ratio() > 0.0);
    }
}
