//! Structured tracing: nestable spans and point events with monotonic
//! timestamps, recorded into a bounded ring buffer.
//!
//! The recorder is disabled by default. While disabled, entering a span or
//! emitting an event costs one relaxed atomic load and performs **no
//! allocation** — detail strings are produced by closures that are only
//! invoked when recording is on. When the ring buffer is full the oldest
//! events are overwritten (the drop count is reported), so tracing overhead
//! is bounded regardless of workload length.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tilestore_testkit::{Json, ToJson};

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered.
    SpanStart,
    /// A span was exited; `dur_ns` holds its duration.
    SpanEnd,
    /// A point event inside the current span.
    Event,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Event => "event",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic timestamp in nanoseconds since the tracer was created.
    pub t_ns: u64,
    /// Start / end / point event.
    pub kind: EventKind,
    /// Static name of the span or event.
    pub name: &'static str,
    /// Free-form detail (`key=value` pairs by convention; empty when none).
    pub detail: String,
    /// Id of the span this event belongs to (the span itself for
    /// start/end; the enclosing span for point events; 0 = no span).
    pub span: u64,
    /// Id of the parent span (0 = root).
    pub parent: u64,
    /// Span duration in nanoseconds ([`EventKind::SpanEnd`] only).
    pub dur_ns: u64,
    /// Request id this event was recorded under (0 = no request scope).
    pub request: u64,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("t_ns", self.t_ns.to_json()),
            ("kind", Json::Str(self.kind.as_str().to_string())),
            ("name", Json::Str(self.name.to_string())),
            ("span", self.span.to_json()),
            ("parent", self.parent.to_json()),
        ];
        if self.kind == EventKind::SpanEnd {
            fields.push(("dur_ns", self.dur_ns.to_json()));
        }
        if self.request != 0 {
            fields.push(("req", self.request.to_json()));
        }
        if !self.detail.is_empty() {
            fields.push(("detail", Json::Str(self.detail.clone())));
        }
        Json::obj(fields)
    }
}

/// Bounded event storage.
#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }
}

thread_local! {
    /// Innermost active span of this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// Request id the current thread is working on behalf of (0 = none).
    /// Executor workers re-enter the scope explicitly when they pick up a
    /// request's sub-task, so fan-out keeps the attribution.
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// The request id the calling thread is currently scoped to (0 = none).
#[must_use]
pub fn current_request_id() -> u64 {
    CURRENT_REQUEST.with(Cell::get)
}

/// RAII guard of a request scope; restores the previous id on drop.
///
/// Entering a scope is one thread-local swap — no allocation, no atomics —
/// so it is safe to wrap around every server request and every executor
/// sub-task regardless of whether tracing is enabled.
#[derive(Debug)]
pub struct RequestScope {
    previous: u64,
}

/// Scopes the calling thread to `request_id`: every span/event recorded
/// until the guard drops is tagged with it.
#[must_use]
pub fn request_scope(request_id: u64) -> RequestScope {
    RequestScope {
        previous: CURRENT_REQUEST.with(|c| c.replace(request_id)),
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.previous));
    }
}

/// A structured trace recorder with a fixed-capacity ring buffer.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    next_span: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            ring: Mutex::new(Ring::default()),
        }
    }
}

impl Tracer {
    /// A disabled tracer (enable with [`Tracer::enable`]).
    #[must_use]
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Whether events are currently recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts recording into a fresh ring buffer of `capacity` events.
    pub fn enable(&self, capacity: usize) {
        {
            let mut ring = self.ring.lock().unwrap();
            *ring = Ring {
                events: VecDeque::with_capacity(capacity),
                capacity,
                dropped: 0,
            };
        }
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording (already-recorded events stay drainable).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Nanoseconds since the tracer was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Enters a span. The returned guard records the matching end event on
    /// drop; nesting is tracked per thread. When the tracer is disabled the
    /// guard is inert and nothing is allocated.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_with(name, String::new)
    }

    /// Enters a span with a lazily-built detail string (only invoked while
    /// recording is on).
    #[must_use]
    pub fn span_with<F: FnOnce() -> String>(&self, name: &'static str, detail: F) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                tracer: None,
                name,
                span: 0,
                parent: 0,
                started_ns: 0,
            };
        }
        let span = self.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SPAN.with(|c| c.replace(span));
        let t_ns = self.now_ns();
        self.ring.lock().unwrap().push(TraceEvent {
            t_ns,
            kind: EventKind::SpanStart,
            name,
            detail: detail(),
            span,
            parent,
            dur_ns: 0,
            request: current_request_id(),
        });
        SpanGuard {
            tracer: Some(self),
            name,
            span,
            parent,
            started_ns: t_ns,
        }
    }

    /// Records a point event in the current span. `detail` is only invoked
    /// while recording is on, so a disabled tracer performs no allocation.
    pub fn event<F: FnOnce() -> String>(&self, name: &'static str, detail: F) {
        if !self.is_enabled() {
            return;
        }
        let span = CURRENT_SPAN.with(Cell::get);
        let e = TraceEvent {
            t_ns: self.now_ns(),
            kind: EventKind::Event,
            name,
            detail: detail(),
            span,
            parent: span,
            dur_ns: 0,
            request: current_request_id(),
        };
        self.ring.lock().unwrap().push(e);
    }

    /// Number of events dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Removes and returns every recorded event, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().events.drain(..).collect()
    }

    /// Drains and serializes the buffer as JSON Lines (one event object per
    /// line).
    #[must_use]
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.drain() {
            out.push_str(&e.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Removes and returns only the events recorded under `request_id`,
    /// oldest first. Other requests' events stay in the ring, so concurrent
    /// per-request exports don't steal each other's spans.
    #[must_use]
    pub fn take_request(&self, request_id: u64) -> Vec<TraceEvent> {
        let mut ring = self.ring.lock().unwrap();
        let mut taken = Vec::new();
        ring.events.retain(|e| {
            if e.request == request_id {
                taken.push(e.clone());
                false
            } else {
                true
            }
        });
        taken
    }

    /// [`Tracer::take_request`] serialized as JSON Lines — the span tree of
    /// one request, ready to append to a per-request trace file.
    #[must_use]
    pub fn take_request_jsonl(&self, request_id: u64) -> String {
        let mut out = String::new();
        for e in self.take_request(request_id) {
            out.push_str(&e.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }
}

/// RAII guard of an active span; records the end event on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    name: &'static str,
    span: u64,
    parent: u64,
    started_ns: u64,
}

impl SpanGuard<'_> {
    /// The span id (0 when the tracer was disabled at entry).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.span
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer else { return };
        CURRENT_SPAN.with(|c| c.set(self.parent));
        let t_ns = tracer.now_ns();
        tracer.ring.lock().unwrap().push(TraceEvent {
            t_ns,
            kind: EventKind::SpanEnd,
            name: self.name,
            detail: String::new(),
            span: self.span,
            parent: self.parent,
            dur_ns: t_ns.saturating_sub(self.started_ns),
            request: current_request_id(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let _g = t.span("query");
            t.event("tile", || panic!("detail closure must not run"));
        }
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let t = Tracer::new();
        t.enable(64);
        {
            let outer = t.span("query");
            let outer_id = outer.id();
            {
                let inner = t.span_with("blob_read", || "bytes=100".to_string());
                assert_ne!(inner.id(), outer_id);
                t.event("page_read", || "page=3".to_string());
            }
        }
        t.disable();
        let events = t.drain();
        // start(query), start(blob_read), event(page_read), end(blob_read), end(query)
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn span_event_sequence_is_complete() {
        let t = Tracer::new();
        t.enable(64);
        {
            let _outer = t.span("query");
            {
                let _inner = t.span("blob_read");
                t.event("page_read", || "page=3".to_string());
            }
        }
        let events = t.drain();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[0].name, "query");
        assert_eq!(events[0].parent, 0);
        assert_eq!(events[1].name, "blob_read");
        assert_eq!(events[1].parent, events[0].span);
        assert_eq!(events[2].kind, EventKind::Event);
        assert_eq!(events[2].span, events[1].span);
        assert_eq!(events[3].kind, EventKind::SpanEnd);
        assert_eq!(events[3].name, "blob_read");
        assert_eq!(events[4].name, "query");
        // Timestamps are monotone.
        assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        // The inner span's duration fits inside the outer's.
        assert!(events[3].dur_ns <= events[4].dur_ns);
    }

    #[test]
    fn ring_buffer_is_bounded_and_drops_oldest() {
        let t = Tracer::new();
        t.enable(4);
        for _ in 0..10 {
            t.event("e", String::new);
        }
        assert_eq!(t.dropped(), 6);
        let events = t.drain();
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn jsonl_export_is_parseable_per_line() {
        let t = Tracer::new();
        t.enable(16);
        {
            let _g = t.span_with("query", || "region=[0:9,0:9]".to_string());
        }
        let jsonl = t.drain_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.field("name").unwrap().as_str(), Some("query"));
        }
        assert!(jsonl.contains("span_start") && jsonl.contains("span_end"));
        assert!(jsonl.contains("dur_ns"));
        assert!(jsonl.contains("region=[0:9,0:9]"));
    }

    #[test]
    fn request_scope_tags_events_and_nests() {
        let t = Tracer::new();
        t.enable(64);
        assert_eq!(current_request_id(), 0);
        {
            let _r = request_scope(7);
            assert_eq!(current_request_id(), 7);
            let _g = t.span("query");
            t.event("tile", String::new);
            {
                let _inner = request_scope(9);
                assert_eq!(current_request_id(), 9);
            }
            assert_eq!(current_request_id(), 7);
        }
        assert_eq!(current_request_id(), 0);
        let events = t.drain();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.request == 7));
        let json = events[0].to_json().to_string_compact();
        assert!(json.contains("\"req\":7"), "{json}");
    }

    #[test]
    fn take_request_leaves_other_requests_in_the_ring() {
        let t = Tracer::new();
        t.enable(64);
        {
            let _r = request_scope(1);
            t.event("a", String::new);
        }
        {
            let _r = request_scope(2);
            t.event("b", String::new);
        }
        t.event("untagged", String::new);
        let jsonl = t.take_request_jsonl(1);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"req\":1"), "{jsonl}");
        // Request 2 and the untagged event survived the selective drain.
        let rest = t.drain();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].request, 2);
        assert_eq!(rest[1].request, 0);
        // Untagged events never serialize a req field.
        assert!(!rest[1].to_json().to_string_compact().contains("req"));
    }

    #[test]
    fn re_enabling_resets_the_buffer() {
        let t = Tracer::new();
        t.enable(8);
        t.event("a", String::new);
        t.enable(8);
        t.event("b", String::new);
        let events = t.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "b");
    }
}
