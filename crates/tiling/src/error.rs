//! Error type for tiling computations.

use std::fmt;

use tilestore_geometry::GeometryError;

/// Errors raised while computing or validating tilings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TilingError {
    /// An underlying geometric operation failed.
    Geometry(GeometryError),
    /// The cell size is zero.
    ZeroCellSize,
    /// A single cell does not fit in `MaxTileSize`.
    CellExceedsMaxTileSize {
        /// The cell size in bytes.
        cell_size: usize,
        /// The configured maximum tile size in bytes.
        max_tile_size: u64,
    },
    /// A tile configuration has the wrong number of entries for the domain.
    ConfigDimensionMismatch {
        /// Entries in the configuration.
        config: usize,
        /// Dimensionality of the domain.
        domain: usize,
    },
    /// A tile configuration contains a zero relative size.
    ZeroConfigEntry {
        /// The offending axis.
        axis: usize,
    },
    /// A directional partition refers to an axis outside the domain.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// Dimensionality of the domain.
        dim: usize,
    },
    /// The same axis was partitioned twice.
    DuplicateAxis {
        /// The duplicated axis.
        axis: usize,
    },
    /// Directional partition points are invalid (not strictly increasing, or
    /// not anchored at the domain bounds as §5.2 requires).
    BadPartitionPoints {
        /// The offending axis.
        axis: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An area of interest lies (partly) outside the domain being tiled.
    AreaOutsideDomain {
        /// Index of the offending area.
        index: usize,
    },
    /// No areas of interest were supplied.
    NoAreasOfInterest,
    /// More areas of interest than the intersect code can encode.
    TooManyAreas {
        /// Areas supplied.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// A produced tiling violates an invariant (internal consistency check).
    InvalidTiling(String),
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::Geometry(e) => write!(f, "geometry error: {e}"),
            TilingError::ZeroCellSize => write!(f, "cell size must be positive"),
            TilingError::CellExceedsMaxTileSize {
                cell_size,
                max_tile_size,
            } => write!(
                f,
                "a single {cell_size}-byte cell exceeds MaxTileSize={max_tile_size}"
            ),
            TilingError::ConfigDimensionMismatch { config, domain } => write!(
                f,
                "tile configuration has {config} entries for a {domain}-dimensional domain"
            ),
            TilingError::ZeroConfigEntry { axis } => {
                write!(f, "tile configuration entry for axis {axis} is zero")
            }
            TilingError::AxisOutOfRange { axis, dim } => {
                write!(f, "axis {axis} out of range for dimensionality {dim}")
            }
            TilingError::DuplicateAxis { axis } => {
                write!(f, "axis {axis} partitioned more than once")
            }
            TilingError::BadPartitionPoints { axis, reason } => {
                write!(f, "bad partition points on axis {axis}: {reason}")
            }
            TilingError::AreaOutsideDomain { index } => {
                write!(f, "area of interest #{index} lies outside the domain")
            }
            TilingError::NoAreasOfInterest => write!(f, "no areas of interest supplied"),
            TilingError::TooManyAreas { got, max } => {
                write!(
                    f,
                    "{got} areas of interest exceed the supported maximum {max}"
                )
            }
            TilingError::InvalidTiling(s) => write!(f, "invalid tiling: {s}"),
        }
    }
}

impl std::error::Error for TilingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TilingError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeometryError> for TilingError {
    fn from(e: GeometryError) -> Self {
        TilingError::Geometry(e)
    }
}

/// Convenience result alias for tiling operations.
pub type Result<T> = std::result::Result<T, TilingError>;
