//! Tiling specifications — the validated output of every tiling algorithm.
//!
//! §5.2: "All algorithms calculate a partition of the spatial domain (or
//! tiling specification) based on input parameters. The partition returned
//! by the tiling algorithm is then used for calculating the actual tiles in
//! the second phase." A [`TilingSpec`] is that first-phase artifact: a set
//! of disjoint tile domains, each within the target domain and below the
//! size cap.

use tilestore_geometry::Domain;

use crate::error::{Result, TilingError};

/// Default `MaxTileSize` in bytes when a strategy does not specify one.
///
/// The paper's experiments sweep 32 KB – 256 KB; 128 KB is a middle ground.
pub const DEFAULT_MAX_TILE_SIZE: u64 = 128 * 1024;

/// A validated partition of (part of) a spatial domain into disjoint tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilingSpec {
    tiles: Vec<Domain>,
}

impl TilingSpec {
    /// Wraps a list of tile domains *without* validating. Prefer
    /// [`TilingSpec::validated`].
    #[must_use]
    pub fn new_unchecked(tiles: Vec<Domain>) -> Self {
        TilingSpec { tiles }
    }

    /// Wraps and validates a list of tile domains against the target domain
    /// and size constraints.
    ///
    /// # Errors
    /// [`TilingError::InvalidTiling`] when tiles overlap, escape the domain
    /// or exceed `max_tile_size`; [`TilingError::ZeroCellSize`] for a zero
    /// cell size.
    pub fn validated(
        tiles: Vec<Domain>,
        domain: &Domain,
        cell_size: usize,
        max_tile_size: u64,
    ) -> Result<Self> {
        let spec = TilingSpec { tiles };
        spec.validate(domain, cell_size, max_tile_size)?;
        Ok(spec)
    }

    /// The tile domains.
    #[must_use]
    pub fn tiles(&self) -> &[Domain] {
        &self.tiles
    }

    /// Number of tiles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the spec contains no tiles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Consumes the spec, returning the tile domains.
    #[must_use]
    pub fn into_tiles(self) -> Vec<Domain> {
        self.tiles
    }

    /// Total number of cells covered by the tiles.
    #[must_use]
    pub fn covered_cells(&self) -> u64 {
        self.tiles.iter().map(Domain::cells).sum()
    }

    /// Size in bytes of the largest tile.
    #[must_use]
    pub fn max_tile_bytes(&self, cell_size: usize) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.cells() * cell_size as u64)
            .max()
            .unwrap_or(0)
    }

    /// Checks all invariants of an arbitrary tiling (DESIGN.md §7):
    /// pairwise disjoint, inside `domain`, each at most `max_tile_size`
    /// bytes, matching dimensionality.
    ///
    /// Disjointness uses a sweep over tiles sorted by their lowest corner,
    /// comparing each tile only against neighbours whose first-axis range
    /// can still overlap — `O(n log n + n·k)` instead of `O(n²)` for the
    /// typical case of grid-like tilings.
    ///
    /// # Errors
    /// [`TilingError::InvalidTiling`] describing the first violation found.
    pub fn validate(&self, domain: &Domain, cell_size: usize, max_tile_size: u64) -> Result<()> {
        if cell_size == 0 {
            return Err(TilingError::ZeroCellSize);
        }
        for (i, t) in self.tiles.iter().enumerate() {
            if t.dim() != domain.dim() {
                return Err(TilingError::InvalidTiling(format!(
                    "tile #{i} {t} has dimensionality {} but domain {domain} has {}",
                    t.dim(),
                    domain.dim()
                )));
            }
            if !domain.contains_domain(t) {
                return Err(TilingError::InvalidTiling(format!(
                    "tile #{i} {t} escapes domain {domain}"
                )));
            }
            let bytes = t.size_bytes(cell_size).map_err(TilingError::Geometry)?;
            if bytes > max_tile_size {
                return Err(TilingError::InvalidTiling(format!(
                    "tile #{i} {t} has {bytes} bytes > MaxTileSize {max_tile_size}"
                )));
            }
        }
        self.check_disjoint()
    }

    /// Checks only pairwise disjointness.
    ///
    /// # Errors
    /// [`TilingError::InvalidTiling`] naming the first overlapping pair.
    pub fn check_disjoint(&self) -> Result<()> {
        let mut order: Vec<usize> = (0..self.tiles.len()).collect();
        order.sort_by_key(|&i| self.tiles[i].lo(0));
        for (si, &i) in order.iter().enumerate() {
            let a = &self.tiles[i];
            for &j in &order[si + 1..] {
                let b = &self.tiles[j];
                if b.lo(0) > a.hi(0) {
                    break; // no later tile can overlap `a` on axis 0
                }
                if a.intersects(b) {
                    return Err(TilingError::InvalidTiling(format!(
                        "tiles {a} and {b} overlap"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Whether the tiles exactly cover `domain` (complete tiling): disjoint
    /// and cell counts add up.
    #[must_use]
    pub fn covers(&self, domain: &Domain) -> bool {
        self.check_disjoint().is_ok()
            && self.tiles.iter().all(|t| domain.contains_domain(t))
            && self.covered_cells() == domain.cells()
    }

    /// The tiles intersecting `region`, with the intersections.
    #[must_use]
    pub fn intersecting(&self, region: &Domain) -> Vec<(usize, Domain)> {
        self.tiles
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.intersection(region).map(|x| (i, x)))
            .collect()
    }

    /// Bytes that must be read to answer a range query `region`: the full
    /// size of every intersected tile (tiles are the unit of access, §2).
    #[must_use]
    pub fn bytes_touched(&self, region: &Domain, cell_size: usize) -> u64 {
        self.tiles
            .iter()
            .filter(|t| t.intersects(region))
            .map(|t| t.cells() * cell_size as u64)
            .sum()
    }
}

/// Shared pre-flight validation for every tiling algorithm.
///
/// # Errors
/// [`TilingError::ZeroCellSize`] or [`TilingError::CellExceedsMaxTileSize`].
pub fn check_cell_fits(cell_size: usize, max_tile_size: u64) -> Result<()> {
    if cell_size == 0 {
        return Err(TilingError::ZeroCellSize);
    }
    if cell_size as u64 > max_tile_size {
        return Err(TilingError::CellExceedsMaxTileSize {
            cell_size,
            max_tile_size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn validated_accepts_a_good_partition() {
        let dom = d("[0:3,0:3]");
        let spec = TilingSpec::validated(vec![d("[0:1,0:3]"), d("[2:3,0:3]")], &dom, 1, 8).unwrap();
        assert!(spec.covers(&dom));
        assert_eq!(spec.covered_cells(), 16);
        assert_eq!(spec.max_tile_bytes(1), 8);
    }

    #[test]
    fn rejects_overlap() {
        let dom = d("[0:3,0:3]");
        let err =
            TilingSpec::validated(vec![d("[0:2,0:3]"), d("[2:3,0:3]")], &dom, 1, 100).unwrap_err();
        assert!(matches!(err, TilingError::InvalidTiling(_)));
    }

    #[test]
    fn rejects_escape_and_oversize() {
        let dom = d("[0:3,0:3]");
        assert!(TilingSpec::validated(vec![d("[0:4,0:3]")], &dom, 1, 100).is_err());
        assert!(TilingSpec::validated(vec![d("[0:3,0:3]")], &dom, 1, 15).is_err());
        assert!(TilingSpec::validated(vec![d("[0:0]")], &dom, 1, 15).is_err());
    }

    #[test]
    fn partial_coverage_is_legal_but_not_covering() {
        let dom = d("[0:9,0:9]");
        let spec = TilingSpec::validated(vec![d("[0:1,0:1]")], &dom, 1, 100).unwrap();
        assert!(!spec.covers(&dom));
        assert_eq!(spec.covered_cells(), 4);
    }

    #[test]
    fn intersecting_and_bytes_touched() {
        let spec = TilingSpec::new_unchecked(vec![
            d("[0:4,0:4]"),
            d("[0:4,5:9]"),
            d("[5:9,0:4]"),
            d("[5:9,5:9]"),
        ]);
        let q = d("[3:6,3:6]");
        let hits = spec.intersecting(&q);
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].1, d("[3:4,3:4]"));
        assert_eq!(spec.bytes_touched(&q, 2), 4 * 25 * 2);
        let corner = d("[0:1,0:1]");
        assert_eq!(spec.bytes_touched(&corner, 2), 25 * 2);
    }

    #[test]
    fn check_cell_fits_bounds() {
        assert!(check_cell_fits(0, 100).is_err());
        assert!(check_cell_fits(101, 100).is_err());
        assert!(check_cell_fits(100, 100).is_ok());
    }

    #[test]
    fn disjointness_sweep_catches_far_pairs() {
        // Overlap on axis 0 ranges that are not adjacent in sorted order.
        let spec = TilingSpec::new_unchecked(vec![
            d("[0:9,0:0]"),
            d("[1:1,5:9]"),
            d("[5:5,0:5]"), // overlaps tile 0 at (5,0)
        ]);
        assert!(spec.check_disjoint().is_err());
    }
}
