//! Arbitrary multidimensional tiling strategies.
//!
//! This crate implements §4–§5.2 of *Furtado & Baumann, "Storage of
//! Multidimensional Arrays Based on Arbitrary Tiling" (ICDE 1999)*: the
//! algorithms that partition an MDD object's spatial domain into disjoint
//! multidimensional tiles, tunable to the expected access pattern.
//!
//! | Strategy | Paper section | Type |
//! |---|---|---|
//! | [`AlignedTiling`] | §5.2 "Aligned Tiling" | [`Scheme::Aligned`] |
//! | [`SingleTile`] | §5.1 access type (a) | [`Scheme::SingleTile`] |
//! | [`DirectionalTiling`] | §5.2 "Partitioning the Dimensions" | [`Scheme::Directional`] |
//! | [`AreasOfInterestTiling`] | §5.2 "Areas of Interest" (Fig. 6) | [`Scheme::AreasOfInterest`] |
//! | [`StatisticTiling`] | §5.2 "Statistic Tiling" | [`Scheme::Statistic`] |
//!
//! Every strategy implements [`TilingStrategy`] and produces a validated
//! [`TilingSpec`] — a set of disjoint tiles within the domain, each at most
//! `MaxTileSize` bytes. The spec is the "first phase" of §5.2; materializing
//! tiles from array data is the storage engine's second phase.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod aligned;
mod config;
mod directional;
mod error;
mod interest;
mod parse;
mod spec;
mod statistic;
mod strategy;

pub use aligned::{AlignedTiling, SingleTile};
pub use config::{Extent, TileConfig};
pub use directional::{
    blocks_from_starts, cartesian_blocks, minimal_split_format, AxisPartition, DirectionalTiling,
    SubTiling,
};
pub use error::{Result, TilingError};
pub use interest::{AreasOfInterestTiling, IntersectCode, MAX_AREAS};
pub use parse::{
    parse_retile_spec, parse_scheme_spec, RetileSpec, DEFAULT_SPEC_TILE_KB, RETILE_USAGE,
};
pub use spec::{check_cell_fits, TilingSpec, DEFAULT_MAX_TILE_SIZE};
pub use statistic::{AccessCluster, AccessRecord, StatisticTiling};
pub use strategy::{Scheme, TilingStrategy};
