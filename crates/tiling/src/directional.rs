//! Directional tiling (§5.2, "Partitioning the Dimensions").
//!
//! The user specifies partitions of some or all axes of the domain — e.g.
//! the month boundaries of a time axis, or the product-class boundaries of
//! a product axis (Table 1). The space is first cut by the hyperplanes
//! `x_i = p_{i,j}`; blocks that still exceed `MaxTileSize` are then split
//! with the aligned tiling algorithm. The resulting scheme "optimizes the
//! amount of data read for all operations of access to any subset of those
//! partitions".

use tilestore_geometry::{AxisRange, Domain};
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::aligned::AlignedTiling;
use crate::config::TileConfig;
use crate::error::{Result, TilingError};
use crate::spec::{check_cell_fits, TilingSpec};
use crate::strategy::TilingStrategy;

/// A partition of one axis into category blocks.
///
/// Following the paper's notation, the points `p_1 < p_2 < … < p_n` satisfy
/// `p_1 = m.l_i` and `p_n = m.u_i`; they induce the blocks
/// `[p_1 : p_2 - 1], [p_2 : p_3 - 1], …, [p_{n-1} : p_n]`. This matches
/// Table 1: products `[1,27,42,60]` → the three classes `[1:26]`, `[27:41]`,
/// `[42:60]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisPartition {
    /// The axis (direction) being partitioned, 0-based.
    pub axis: usize,
    /// The partition points `p_1 < … < p_n`.
    pub points: Vec<i64>,
}

impl AxisPartition {
    /// Creates a partition of `axis` at `points`.
    #[must_use]
    pub fn new(axis: usize, points: Vec<i64>) -> Self {
        AxisPartition { axis, points }
    }

    /// Validates the points against the axis range of `domain` and returns
    /// the induced blocks.
    ///
    /// Two interpretations are supported:
    ///
    /// * **anchored** (the paper's Table 1 form): `p_1 = lo` and
    ///   `p_n = hi` — blocks are `[p_1:p_2-1], …, [p_{n-1}:p_n]`;
    /// * **global hyperplanes**: when the points do not anchor at the
    ///   domain bounds, they are treated as the positions of the cut
    ///   hyperplanes `x_i = p` over the *whole array* (§4), clipped to this
    ///   domain. A sub-domain inserted during gradual growth is then tiled
    ///   consistently with the object's global category structure.
    ///
    /// # Errors
    /// [`TilingError::BadPartitionPoints`] when points are not strictly
    /// increasing or empty; [`TilingError::AxisOutOfRange`] for a bad axis.
    pub fn blocks(&self, domain: &Domain) -> Result<Vec<AxisRange>> {
        if self.axis >= domain.dim() {
            return Err(TilingError::AxisOutOfRange {
                axis: self.axis,
                dim: domain.dim(),
            });
        }
        let range = domain.axis(self.axis);
        let bad = |reason: String| TilingError::BadPartitionPoints {
            axis: self.axis,
            reason,
        };
        if self.points.is_empty() {
            return Err(bad("need at least one partition point".into()));
        }
        if !self.points.windows(2).all(|w| w[0] < w[1]) {
            return Err(bad("points must be strictly increasing".into()));
        }
        let anchored = self.points.len() >= 2
            && self.points[0] == range.lo()
            && *self.points.last().expect("non-empty") == range.hi();
        if anchored {
            let n = self.points.len();
            let mut blocks = Vec::with_capacity(n - 1);
            for j in 0..n - 1 {
                let lo = self.points[j];
                let hi = if j == n - 2 {
                    self.points[j + 1]
                } else {
                    self.points[j + 1] - 1
                };
                blocks.push(AxisRange::new(lo, hi).expect("strictly increasing points"));
            }
            return Ok(blocks);
        }
        // Global-hyperplane mode: block starts are the domain lower bound
        // plus every cut position strictly inside the domain.
        let mut starts = vec![range.lo()];
        for &p in &self.points {
            if p > range.lo() && p <= range.hi() {
                starts.push(p);
            }
        }
        starts.dedup();
        Ok(blocks_from_starts(range, &starts))
    }
}

/// How oversized blocks produced by the axis cuts are split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubTiling {
    /// Split each oversize block with as few cuts as possible: repeatedly
    /// halve the block's longest direction until it fits `MaxTileSize`.
    /// Preserves the category structure best (sub-tiles keep the block's
    /// cross-section whole as long as possible) and avoids the sliver tiles
    /// a fixed cubic format produces on odd-sized blocks. This is the
    /// default; \[12\] describes the option space for sub-partitioning.
    MinimalSplits,
    /// Split with the aligned tiling algorithm using this configuration.
    Aligned(TileConfig),
    /// Leave blocks unsplit regardless of size. Used internally by the
    /// areas-of-interest algorithm (Fig. 6 runs directional tiling "without
    /// subpartitioning") and useful for inspecting raw category blocks.
    None,
}

/// Computes a block format that fits `budget_cells` with as few cuts as
/// possible: start from the block's extents and repeatedly halve the
/// longest direction.
#[must_use]
pub fn minimal_split_format(extents: &[u64], budget_cells: u64) -> Vec<u64> {
    let budget = budget_cells.max(1);
    let mut format: Vec<u64> = extents.to_vec();
    while format.iter().product::<u64>() > budget {
        let axis = (0..format.len())
            .max_by_key(|&i| format[i])
            .expect("non-empty format");
        if format[axis] == 1 {
            break; // single cell per tile; cannot shrink further
        }
        format[axis] = format[axis].div_ceil(2);
    }
    format
}

/// Directional tiling: axis partitions plus sub-tiling of oversize blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectionalTiling {
    /// Partitions for a subset of the axes (axes not listed are uncut).
    pub partitions: Vec<AxisPartition>,
    /// Maximum size of any produced tile, in bytes (ignored when
    /// `sub_tiling` is [`SubTiling::None`]).
    pub max_tile_size: u64,
    /// Sub-tiling policy for oversize blocks.
    pub sub_tiling: SubTiling,
}

impl DirectionalTiling {
    /// Directional tiling with minimal-split sub-tiling of oversize blocks.
    #[must_use]
    pub fn new(partitions: Vec<AxisPartition>, max_tile_size: u64) -> Self {
        DirectionalTiling {
            partitions,
            max_tile_size,
            sub_tiling: SubTiling::MinimalSplits,
        }
    }

    /// Directional tiling that leaves oversize blocks unsplit.
    #[must_use]
    pub fn without_subtiling(partitions: Vec<AxisPartition>) -> Self {
        DirectionalTiling {
            partitions,
            max_tile_size: u64::MAX,
            sub_tiling: SubTiling::None,
        }
    }

    /// The raw category blocks (cartesian product of per-axis blocks),
    /// before any sub-tiling.
    ///
    /// # Errors
    /// Propagates [`AxisPartition::blocks`] validation errors and
    /// [`TilingError::DuplicateAxis`].
    pub fn category_blocks(&self, domain: &Domain) -> Result<Vec<Domain>> {
        let d = domain.dim();
        let mut per_axis: Vec<Vec<AxisRange>> = domain.ranges().iter().map(|r| vec![*r]).collect();
        let mut seen = vec![false; d];
        for p in &self.partitions {
            if p.axis < d && seen[p.axis] {
                return Err(TilingError::DuplicateAxis { axis: p.axis });
            }
            let blocks = p.blocks(domain)?;
            seen[p.axis] = true;
            per_axis[p.axis] = blocks;
        }
        Ok(cartesian_blocks(&per_axis))
    }
}

/// Cartesian product of per-axis block lists, last axis fastest (row-major
/// block order). Shared by directional and areas-of-interest tiling.
#[must_use]
pub fn cartesian_blocks(per_axis: &[Vec<AxisRange>]) -> Vec<Domain> {
    let d = per_axis.len();
    let mut result: Vec<Vec<AxisRange>> = vec![Vec::with_capacity(d)];
    for axis_blocks in per_axis {
        let mut next = Vec::with_capacity(result.len() * axis_blocks.len());
        for prefix in &result {
            for &b in axis_blocks {
                let mut ranges: Vec<AxisRange> = prefix.clone();
                ranges.push(b);
                next.push(ranges);
            }
        }
        result = next;
    }
    result
        .into_iter()
        .map(|ranges| Domain::new(ranges).expect("d >= 1"))
        .collect()
}

/// Splits `range` into consecutive blocks at the given block *starts*.
///
/// `starts` must be strictly increasing, begin at `range.lo()` and stay
/// within the range; the blocks are `[s_1 : s_2 - 1], …, [s_m : range.hi()]`.
/// Unlike the paper's partition-point notation this form can express a
/// trailing single-coordinate block.
#[must_use]
pub fn blocks_from_starts(range: AxisRange, starts: &[i64]) -> Vec<AxisRange> {
    debug_assert!(starts.first() == Some(&range.lo()), "starts anchored at lo");
    debug_assert!(
        starts.windows(2).all(|w| w[0] < w[1]),
        "strictly increasing"
    );
    debug_assert!(starts.last().is_some_and(|&s| s <= range.hi()));
    let mut blocks = Vec::with_capacity(starts.len());
    for (j, &s) in starts.iter().enumerate() {
        let hi = if j + 1 < starts.len() {
            starts[j + 1] - 1
        } else {
            range.hi()
        };
        blocks.push(AxisRange::new(s, hi).expect("starts within range"));
    }
    blocks
}

impl TilingStrategy for DirectionalTiling {
    fn name(&self) -> &'static str {
        "directional"
    }

    fn max_tile_size(&self) -> u64 {
        self.max_tile_size
    }

    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec> {
        let blocks = self.category_blocks(domain)?;
        if matches!(self.sub_tiling, SubTiling::None) {
            return Ok(TilingSpec::new_unchecked(blocks));
        }
        check_cell_fits(cell_size, self.max_tile_size)?;
        let budget = (self.max_tile_size / cell_size as u64).max(1);
        let mut tiles = Vec::with_capacity(blocks.len());
        for block in blocks {
            if block.size_bytes(cell_size)? <= self.max_tile_size {
                tiles.push(block);
                continue;
            }
            match &self.sub_tiling {
                SubTiling::MinimalSplits => {
                    let extents = block.extents();
                    let format = minimal_split_format(&extents, budget);
                    tiles.extend(tilestore_geometry::GridIter::new(block, &format)?);
                }
                SubTiling::Aligned(config) => {
                    let cfg = if config.dim() == domain.dim() {
                        config.clone()
                    } else {
                        TileConfig::equal(domain.dim())
                    };
                    let sub =
                        AlignedTiling::new(cfg, self.max_tile_size).partition(&block, cell_size)?;
                    tiles.extend(sub.into_tiles());
                }
                SubTiling::None => unreachable!("handled above"),
            }
        }
        TilingSpec::validated(tiles, domain, cell_size, self.max_tile_size)
    }
}

impl ToJson for AxisPartition {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("axis", self.axis.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

impl FromJson for AxisPartition {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(AxisPartition {
            axis: usize::from_json(v.field("axis")?)?,
            points: Vec::from_json(v.field("points")?)?,
        })
    }
}

impl ToJson for SubTiling {
    /// Serializes as a tagged object: `{"kind":"minimal_splits"}`,
    /// `{"kind":"aligned","config":"[4,*]"}` or `{"kind":"none"}`.
    fn to_json(&self) -> Json {
        match self {
            SubTiling::MinimalSplits => {
                Json::obj(vec![("kind", Json::Str("minimal_splits".into()))])
            }
            SubTiling::Aligned(config) => Json::obj(vec![
                ("kind", Json::Str("aligned".into())),
                ("config", config.to_json()),
            ]),
            SubTiling::None => Json::obj(vec![("kind", Json::Str("none".into()))]),
        }
    }
}

impl FromJson for SubTiling {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let kind = v
            .field("kind")?
            .as_str()
            .ok_or_else(|| JsonError::msg("sub-tiling kind must be a string"))?;
        match kind {
            "minimal_splits" => Ok(SubTiling::MinimalSplits),
            "aligned" => Ok(SubTiling::Aligned(TileConfig::from_json(
                v.field("config")?,
            )?)),
            "none" => Ok(SubTiling::None),
            other => Err(JsonError::msg(format!("unknown sub-tiling kind {other:?}"))),
        }
    }
}

impl ToJson for DirectionalTiling {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("partitions", self.partitions.to_json()),
            ("max_tile_size", self.max_tile_size.to_json()),
            ("sub_tiling", self.sub_tiling.to_json()),
        ])
    }
}

impl FromJson for DirectionalTiling {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(DirectionalTiling {
            partitions: Vec::from_json(v.field("partitions")?)?,
            max_tile_size: u64::from_json(v.field("max_tile_size")?)?,
            sub_tiling: SubTiling::from_json(v.field("sub_tiling")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    /// The Table 1 benchmark cube: days × products × stores.
    fn cube() -> Domain {
        d("[1:730,1:60,1:100]")
    }

    fn table1_partitions() -> Vec<AxisPartition> {
        // Months: 24 blocks over two years (first day of each month + end).
        let mut months = vec![1i64];
        let lengths = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
        let mut day = 1i64;
        for year in 0..2 {
            for (m, &len) in lengths.iter().enumerate() {
                day += len;
                if year == 1 && m == 11 {
                    months.push(730); // p_n = m.u
                } else {
                    months.push(day);
                }
            }
        }
        vec![
            AxisPartition::new(0, months),
            AxisPartition::new(1, vec![1, 27, 42, 60]),
            AxisPartition::new(2, vec![1, 27, 35, 41, 59, 73, 89, 97, 100]),
        ]
    }

    #[test]
    fn axis_partition_blocks_match_table1() {
        let p = AxisPartition::new(1, vec![1, 27, 42, 60]);
        let blocks = p.blocks(&cube()).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!((blocks[0].lo(), blocks[0].hi()), (1, 26));
        assert_eq!((blocks[1].lo(), blocks[1].hi()), (27, 41));
        assert_eq!((blocks[2].lo(), blocks[2].hi()), (42, 60));

        let p = AxisPartition::new(2, vec![1, 27, 35, 41, 59, 73, 89, 97, 100]);
        assert_eq!(p.blocks(&cube()).unwrap().len(), 8);
    }

    #[test]
    fn axis_partition_validation() {
        let dom = cube();
        assert!(AxisPartition::new(1, vec![]).blocks(&dom).is_err());
        assert!(AxisPartition::new(1, vec![1, 1, 60]).blocks(&dom).is_err());
        assert!(AxisPartition::new(1, vec![1, 60, 30]).blocks(&dom).is_err());
        assert!(AxisPartition::new(9, vec![1, 60]).blocks(&dom).is_err());
    }

    #[test]
    fn unanchored_points_clip_as_global_hyperplanes() {
        // The object's global cuts applied to a sub-domain (gradual growth).
        let sub = d("[1:90,1:60,1:100]");
        let year = AxisPartition::new(0, vec![1, 91, 182, 274, 365]);
        let blocks = year.blocks(&sub).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!((blocks[0].lo(), blocks[0].hi()), (1, 90));

        let mid = d("[50:200,1:60,1:100]");
        let blocks = year.blocks(&mid).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!((blocks[0].lo(), blocks[0].hi()), (50, 90));
        assert_eq!((blocks[1].lo(), blocks[1].hi()), (91, 181));
        assert_eq!((blocks[2].lo(), blocks[2].hi()), (182, 200));

        // Cuts entirely outside the domain leave it whole.
        let far = AxisPartition::new(0, vec![1000, 2000]);
        assert_eq!(far.blocks(&sub).unwrap().len(), 1);

        // A single point acts as one global cut.
        let single = AxisPartition::new(0, vec![46]);
        let blocks = single.blocks(&sub).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!((blocks[1].lo(), blocks[1].hi()), (46, 90));
    }

    #[test]
    fn category_blocks_are_cartesian_product() {
        let t = DirectionalTiling::without_subtiling(table1_partitions());
        let blocks = t.category_blocks(&cube()).unwrap();
        assert_eq!(blocks.len(), 24 * 3 * 8);
        let spec = TilingSpec::new_unchecked(blocks);
        assert!(spec.covers(&cube()));
    }

    #[test]
    fn duplicate_axis_rejected() {
        let t = DirectionalTiling::without_subtiling(vec![
            AxisPartition::new(1, vec![1, 30, 60]),
            AxisPartition::new(1, vec![1, 40, 60]),
        ]);
        assert!(matches!(
            t.category_blocks(&cube()),
            Err(TilingError::DuplicateAxis { axis: 1 })
        ));
    }

    #[test]
    fn unpartitioned_axes_stay_whole() {
        let t =
            DirectionalTiling::without_subtiling(vec![AxisPartition::new(1, vec![1, 27, 42, 60])]);
        let blocks = t.category_blocks(&cube()).unwrap();
        assert_eq!(blocks.len(), 3);
        for b in &blocks {
            assert_eq!(b.extent(0), 730);
            assert_eq!(b.extent(2), 100);
        }
    }

    #[test]
    fn oversize_blocks_are_subtiled_and_cuts_respected() {
        // 3P directional tiling at 64K over the Table 1 cube (Dir64K3P).
        let parts = table1_partitions();
        let t = DirectionalTiling::new(parts.clone(), 64 * 1024);
        let spec = t.partition(&cube(), 4).unwrap();
        assert!(spec.covers(&cube()));
        assert!(spec.max_tile_bytes(4) <= 64 * 1024);
        // No tile crosses a user cut plane.
        for p in &parts {
            for &cut in &p.points[1..p.points.len() - 1] {
                for tile in spec.tiles() {
                    let r = tile.axis(p.axis);
                    assert!(
                        !(r.lo() < cut && cut <= r.hi()),
                        "tile {tile} crosses cut {cut} on axis {}",
                        p.axis
                    );
                }
            }
        }
    }

    #[test]
    fn small_blocks_stay_unsplit() {
        // Blocks already below MaxTileSize must be kept whole.
        let t = DirectionalTiling::new(vec![AxisPartition::new(0, vec![0, 5, 9])], 1 << 20);
        let dom = d("[0:9,0:9]");
        let spec = t.partition(&dom, 1).unwrap();
        assert_eq!(spec.len(), 2);
    }
}
