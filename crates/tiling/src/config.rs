//! Tile configurations and the tile-format computation of §5.2.
//!
//! A *tile configuration* `(r_1, ..., r_d)` expresses the user's relative
//! size preferences per direction; entries may be `*` ("infinite") to mark
//! preferential scan directions. The storage manager — not the user — turns
//! the configuration into a concrete *tile format* `(t_1, ..., t_d)` sized
//! to optimally fill `MaxTileSize`, because the user "has no knowledge of
//! low level storage parameters".

use std::fmt;
use std::str::FromStr;

use tilestore_geometry::Domain;
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{Result, TilingError};
use crate::spec::check_cell_fits;

/// One entry of a tile configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Extent {
    /// A finite relative size `r_i > 0`.
    Fixed(u64),
    /// `*` — maximize tile length along this direction (preferential scan
    /// direction).
    Unbounded,
}

/// A tile configuration `(r_1, ..., r_d)`.
///
/// Examples from the paper: `[*, 1, *]` for frame-by-frame access to a 3-D
/// animation cut along direction `y`; `[1, *, 1]` for accesses fixing
/// `x = c_1 ∧ z = c_2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TileConfig(Vec<Extent>);

impl TileConfig {
    /// Creates a configuration from per-axis entries.
    ///
    /// # Errors
    /// [`TilingError::ZeroConfigEntry`] when a finite entry is zero;
    /// [`TilingError::ConfigDimensionMismatch`] for an empty list.
    pub fn new(entries: Vec<Extent>) -> Result<Self> {
        if entries.is_empty() {
            return Err(TilingError::ConfigDimensionMismatch {
                config: 0,
                domain: 0,
            });
        }
        for (axis, e) in entries.iter().enumerate() {
            if matches!(e, Extent::Fixed(0)) {
                return Err(TilingError::ZeroConfigEntry { axis });
            }
        }
        Ok(TileConfig(entries))
    }

    /// The default configuration for dimensionality `dim`: equal relative
    /// sizes on every axis (cubic tiles — the paper's *default tiling* is
    /// aligned with no stated preference).
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn equal(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional configuration");
        TileConfig(vec![Extent::Fixed(1); dim])
    }

    /// Convenience constructor from finite relative sizes.
    ///
    /// # Errors
    /// Propagates [`TileConfig::new`] validation.
    pub fn from_sizes(sizes: &[u64]) -> Result<Self> {
        TileConfig::new(sizes.iter().map(|&s| Extent::Fixed(s)).collect())
    }

    /// Number of entries.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// The entries.
    #[must_use]
    pub fn entries(&self) -> &[Extent] {
        &self.0
    }

    /// Computes the concrete tile format `(t_1, ..., t_d)` for `domain`
    /// following §5.2:
    ///
    /// * starred (`*`) directions are maximized first, from the *last*
    ///   starred direction backwards (cells consecutive along later axes are
    ///   grouped preferentially, matching the row-major cell order);
    /// * if the starred directions exhaust `MaxTileSize`, the remaining
    ///   directions get length one;
    /// * otherwise the finite directions are stretched by a common factor
    ///   `f = (B / (r_1 × … × r_k))^(1/k)` where `B` is the remaining cell
    ///   budget, then greedily grown to fill the budget (tiles "are sized in
    ///   a way to optimally fill MaxTileSize");
    /// * every `t_i` is clamped to the domain extent — a tile longer than
    ///   the array is wasted format.
    ///
    /// The returned format always satisfies
    /// `cell_size × ∏ t_i ≤ max_tile_size`.
    ///
    /// # Errors
    /// [`TilingError::ConfigDimensionMismatch`] when dimensionalities differ
    /// and the size pre-flight errors of [`check_cell_fits`].
    pub fn tile_format(
        &self,
        domain: &Domain,
        cell_size: usize,
        max_tile_size: u64,
    ) -> Result<Vec<u64>> {
        if self.dim() != domain.dim() {
            return Err(TilingError::ConfigDimensionMismatch {
                config: self.dim(),
                domain: domain.dim(),
            });
        }
        check_cell_fits(cell_size, max_tile_size)?;
        let d = self.dim();
        let budget_total = (max_tile_size / cell_size as u64).max(1);
        let mut format = vec![0u64; d];
        let mut budget = budget_total;

        // Pass 1: starred directions, last axis first (§5.2: "the length of
        // the tile is made as long as possible along the d_k direction
        // first").
        for axis in (0..d).rev() {
            if matches!(self.0[axis], Extent::Unbounded) {
                let t = domain.extent(axis).min(budget).max(1);
                format[axis] = t;
                budget /= t;
            }
        }

        // Pass 2: finite directions share the remaining budget in proportion
        // to their relative sizes.
        let finite: Vec<usize> = (0..d)
            .filter(|&i| matches!(self.0[i], Extent::Fixed(_)))
            .collect();
        if !finite.is_empty() {
            if budget <= 1 {
                for &axis in &finite {
                    format[axis] = 1;
                }
            } else {
                let ratios: Vec<f64> = finite
                    .iter()
                    .map(|&i| match self.0[i] {
                        Extent::Fixed(r) => r as f64,
                        Extent::Unbounded => unreachable!("finite axes only"),
                    })
                    .collect();
                let prod: f64 = ratios.iter().product();
                let k = finite.len() as f64;
                let f = (budget as f64 / prod).powf(1.0 / k);
                for (&axis, &r) in finite.iter().zip(&ratios) {
                    let t = (f * r).floor() as u64;
                    format[axis] = t.clamp(1, domain.extent(axis));
                }
                // Floating point may overshoot; shrink the largest axes
                // until the product fits the budget.
                loop {
                    let product: u64 = finite.iter().map(|&i| format[i]).product();
                    if product <= budget {
                        break;
                    }
                    let &worst = finite
                        .iter()
                        .filter(|&&i| format[i] > 1)
                        .max_by_key(|&&i| format[i])
                        .expect("product > budget >= 1 implies some t_i > 1");
                    format[worst] -= 1;
                }
                // Greedy growth: use leftover budget, preferring the axis
                // whose current length is furthest below its configured
                // ratio (keeps the configuration's proportions).
                loop {
                    let product: u64 = finite.iter().map(|&i| format[i]).product();
                    let candidate = finite
                        .iter()
                        .filter(|&&i| format[i] < domain.extent(i))
                        .filter(|&&i| product / format[i] <= budget / (format[i] + 1))
                        .min_by(|&&a, &&b| {
                            let fa = format[a] as f64 / ratio_of(&self.0[a]);
                            let fb = format[b] as f64 / ratio_of(&self.0[b]);
                            fa.partial_cmp(&fb).expect("ratios are finite")
                        });
                    match candidate {
                        Some(&axis) => format[axis] += 1,
                        None => break,
                    }
                }
            }
        }
        debug_assert!(
            format.iter().product::<u64>() <= budget_total,
            "format exceeds budget"
        );
        Ok(format)
    }
}

fn ratio_of(e: &Extent) -> f64 {
    match e {
        Extent::Fixed(r) => *r as f64,
        Extent::Unbounded => f64::INFINITY,
    }
}

impl fmt::Display for TileConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match e {
                Extent::Fixed(r) => write!(f, "{r}")?,
                Extent::Unbounded => write!(f, "*")?,
            }
        }
        write!(f, "]")
    }
}

impl FromStr for TileConfig {
    type Err = TilingError;

    /// Parses `"[*,1,*]"` / `"[2,1]"`.
    fn from_str(s: &str) -> Result<Self> {
        let s = s.trim();
        let inner = s
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .unwrap_or(s);
        let entries: Result<Vec<Extent>> = inner
            .split(',')
            .map(|part| {
                let part = part.trim();
                if part == "*" {
                    Ok(Extent::Unbounded)
                } else {
                    part.parse::<u64>().map(Extent::Fixed).map_err(|e| {
                        TilingError::Geometry(tilestore_geometry::GeometryError::Parse(format!(
                            "bad config entry {part:?}: {e}"
                        )))
                    })
                }
            })
            .collect();
        TileConfig::new(entries?)
    }
}

impl ToJson for TileConfig {
    /// Serializes in the paper notation, e.g. `"[*,1,*]"`.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for TileConfig {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| JsonError::msg("expected tile-config string"))?;
        s.parse().map_err(|e| JsonError::msg(format!("{e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_round_trip() {
        let c: TileConfig = "[*,1,*]".parse().unwrap();
        assert_eq!(c.to_string(), "[*,1,*]");
        assert_eq!(c.dim(), 3);
        assert!("[0,1]".parse::<TileConfig>().is_err());
        assert!("[x]".parse::<TileConfig>().is_err());
    }

    #[test]
    fn equal_config_yields_cubic_tiles() {
        let c = TileConfig::equal(2);
        // 1-byte cells, 64-byte budget, domain far larger: 8x8 tiles.
        let f = c.tile_format(&d("[0:99,0:99]"), 1, 64).unwrap();
        assert_eq!(f, vec![8, 8]);
    }

    #[test]
    fn format_respects_ratios() {
        let c = TileConfig::from_sizes(&[4, 1]).unwrap();
        let f = c.tile_format(&d("[0:99,0:99]"), 1, 64).unwrap();
        assert!(f[0] >= 4 * f[1] - 4, "format {f:?} ignores 4:1 ratio");
        assert!(f[0] * f[1] <= 64);
    }

    #[test]
    fn budget_never_exceeded() {
        let c = TileConfig::from_sizes(&[3, 7, 2]).unwrap();
        for max in [10u64, 100, 1000, 12345] {
            let f = c.tile_format(&d("[0:99,0:99,0:99]"), 2, max).unwrap();
            assert!(f.iter().product::<u64>() * 2 <= max, "{f:?} at max={max}");
            assert!(f.iter().all(|&t| t >= 1));
        }
    }

    #[test]
    fn starred_axis_takes_full_extent() {
        // Paper Figure 4: [*,1,*] for an animation accessed frame by frame.
        let c: TileConfig = "[*,1,*]".parse().unwrap();
        let dom = d("[0:120,0:159,0:119]");
        // 3-byte RGB cells, 256 KB budget = 87381 cells.
        let f = c.tile_format(&dom, 3, 256 * 1024).unwrap();
        assert_eq!(f[2], 120, "last starred axis maximized first");
        assert_eq!(f[0], 121);
        // The finite direction receives whatever budget remains: 87381
        // cells / (120 × 121) = 6 frames-slices worth of rows.
        assert_eq!(f[1], 87381 / (120 * 121));
        assert!(f.iter().product::<u64>() * 3 <= 256 * 1024);
    }

    #[test]
    fn starred_axes_capped_by_budget() {
        let c: TileConfig = "[*,*]".parse().unwrap();
        let dom = d("[0:99,0:99]");
        let f = c.tile_format(&dom, 1, 150).unwrap();
        // Last axis gets min(100, 150) = 100, remaining budget 1 for axis 0.
        assert_eq!(f, vec![1, 100]);
    }

    #[test]
    fn finite_axes_get_one_when_budget_exhausted() {
        let c: TileConfig = "[2,*]".parse().unwrap();
        let dom = d("[0:99,0:99]");
        let f = c.tile_format(&dom, 1, 100).unwrap();
        assert_eq!(f, vec![1, 100]);
    }

    #[test]
    fn format_clamped_to_domain_extent() {
        let c = TileConfig::equal(2);
        let dom = d("[0:3,0:3]");
        let f = c.tile_format(&dom, 1, 1_000_000).unwrap();
        assert_eq!(f, vec![4, 4]);
    }

    #[test]
    fn greedy_growth_fills_budget() {
        let c = TileConfig::equal(2);
        // Budget 50 cells: naive floor(sqrt(50))=7 -> 49; growth can't add
        // a row (56 > 50), so 7x7 stands.
        let f = c.tile_format(&d("[0:99,0:99]"), 1, 50).unwrap();
        assert_eq!(f.iter().product::<u64>(), 49);
        // Budget 72: floor(sqrt(72))=8 -> 64; greedy growth reaches 8x9=72.
        let f = c.tile_format(&d("[0:99,0:99]"), 1, 72).unwrap();
        assert_eq!(f.iter().product::<u64>(), 72);
    }

    #[test]
    fn errors() {
        let c = TileConfig::equal(2);
        assert!(matches!(
            c.tile_format(&d("[0:9]"), 1, 100),
            Err(TilingError::ConfigDimensionMismatch { .. })
        ));
        assert!(c.tile_format(&d("[0:9,0:9]"), 0, 100).is_err());
        assert!(c.tile_format(&d("[0:9,0:9]"), 200, 100).is_err());
        assert!(TileConfig::new(vec![]).is_err());
    }
}
