//! Textual tiling-scheme specifications.
//!
//! One compact grammar shared by every surface that accepts a scheme from
//! the outside world — the CLI's `create`/`retile` commands and the server's
//! `retile` request:
//!
//! ```text
//! single                          one tile for the whole domain
//! regular[:<kb>]                  regular aligned tiling, tile cap in KiB
//! aligned:<config>[:<kb>]        aligned tiling with a TileConfig, e.g. [*,1]
//! directional:<cuts>[:<kb>]      directional tiling; cuts = 0=1/31/60,1=1/50
//! ```
//!
//! Errors are plain strings aimed at the human who typed the spec.

use crate::aligned::{AlignedTiling, SingleTile};
use crate::config::TileConfig;
use crate::directional::{AxisPartition, DirectionalTiling};
use crate::strategy::Scheme;

/// Default tile-size cap applied when the spec omits `:<kb>`, in KiB.
pub const DEFAULT_SPEC_TILE_KB: u64 = 128;

/// Parses a textual scheme spec against an object of dimensionality `dim`.
///
/// # Errors
/// A human-readable message naming the malformed component.
pub fn parse_scheme_spec(spec: &str, dim: usize) -> Result<Scheme, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts[0] {
        "single" => Ok(Scheme::SingleTile(SingleTile)),
        "regular" => {
            let kb = tile_kb(parts.get(1))?;
            Ok(Scheme::Aligned(AlignedTiling::regular(dim, kb * 1024)))
        }
        "aligned" => {
            let config: TileConfig = parts
                .get(1)
                .ok_or("aligned needs a config, e.g. aligned:[*,1]:64")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            let kb = tile_kb(parts.get(2))?;
            Ok(Scheme::Aligned(AlignedTiling::new(config, kb * 1024)))
        }
        "directional" => {
            let cuts = parts
                .get(1)
                .ok_or("directional needs cuts, e.g. directional:0=1/31/60,1=1/50:64")?;
            let mut partitions = Vec::new();
            for axis_spec in cuts.split(',') {
                let (axis, points) = axis_spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad axis spec {axis_spec:?}"))?;
                let axis: usize = axis.parse().map_err(|e| format!("bad axis: {e}"))?;
                let points: Result<Vec<i64>, _> = points.split('/').map(str::parse).collect();
                partitions.push(AxisPartition::new(
                    axis,
                    points.map_err(|e| format!("bad cut point: {e}"))?,
                ));
            }
            let kb = tile_kb(parts.get(2))?;
            Ok(Scheme::Directional(DirectionalTiling::new(
                partitions,
                kb * 1024,
            )))
        }
        other => Err(format!(
            "unknown scheme {other:?} (expected single, regular, aligned, directional)"
        )),
    }
}

fn tile_kb(part: Option<&&str>) -> Result<u64, String> {
    match part {
        None => Ok(DEFAULT_SPEC_TILE_KB),
        Some(s) => s.parse().map_err(|e| format!("bad MaxTileSize: {e}")),
    }
}

/// The one-token retile grammar, shared verbatim by the single-node CLI,
/// the cluster CLI, the server's `retile` request, and the cluster
/// coordinator so the surfaces cannot drift.
pub const RETILE_USAGE: &str =
    "<scheme> | --from-log[:<dist>:<freq>:<maxKB>] | --defrag[:<budgetKB>]";

/// A parsed retile request: what to do to the object's tiles.
///
/// Produced by [`parse_retile_spec`]; scheme strings are validated lazily
/// (against the object's dimensionality) by [`parse_scheme_spec`] because
/// the dimensionality is not known at parse time on every surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetileSpec {
    /// Re-tile to an explicit scheme spec (see [`parse_scheme_spec`]).
    Scheme(String),
    /// Re-tile from the recorded access log via statistic tiling.
    FromLog {
        /// Interest-region merge distance threshold.
        distance: u64,
        /// Minimum access frequency for a region to count.
        frequency: u64,
        /// Tile-size cap in bytes.
        max_tile_bytes: u64,
    },
    /// Rewrite the object's tiles curve-ordered onto contiguous pages
    /// without changing the tiling. `budget_bytes` bounds each compaction
    /// step; `None` defragments in one atomic commit.
    Defrag {
        /// Per-step byte budget for paced background compaction.
        budget_bytes: Option<u64>,
    },
}

/// Parses the retile argument: a scheme spec, `--from-log[:d:f:maxKB]`, or
/// `--defrag[:budgetKB]`.
///
/// # Errors
/// A human-readable message naming the malformed component.
pub fn parse_retile_spec(token: &str) -> Result<RetileSpec, String> {
    if let Some(rest) = token.strip_prefix("--from-log") {
        let mut parts = rest.strip_prefix(':').unwrap_or("").split(':');
        let mut next = |default: u64, what: &str| -> Result<u64, String> {
            match parts.next() {
                None | Some("") => Ok(default),
                Some(v) => v.parse().map_err(|e| format!("bad {what}: {e}")),
            }
        };
        let distance = next(0, "distance threshold")?;
        let frequency = next(1, "frequency threshold")?;
        let max_kb = next(DEFAULT_SPEC_TILE_KB, "MaxTileSize")?;
        if parts.next().is_some() {
            return Err(format!(
                "--from-log takes at most 3 parameters ({RETILE_USAGE})"
            ));
        }
        return Ok(RetileSpec::FromLog {
            distance,
            frequency,
            max_tile_bytes: max_kb * 1024,
        });
    }
    if let Some(rest) = token.strip_prefix("--defrag") {
        let budget_bytes = match rest.strip_prefix(':') {
            None if rest.is_empty() => None,
            None => return Err(format!("bad defrag spec {token:?} ({RETILE_USAGE})")),
            Some(kb) => Some(
                kb.parse::<u64>()
                    .map_err(|e| format!("bad defrag budget: {e}"))?
                    * 1024,
            ),
        };
        return Ok(RetileSpec::Defrag { budget_bytes });
    }
    if token.starts_with("--") {
        return Err(format!("unknown retile flag {token:?} ({RETILE_USAGE})"));
    }
    Ok(RetileSpec::Scheme(token.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_every_scheme_kind() {
        assert!(matches!(
            parse_scheme_spec("single", 3),
            Ok(Scheme::SingleTile(_))
        ));
        assert!(matches!(
            parse_scheme_spec("regular:64", 2),
            Ok(Scheme::Aligned(_))
        ));
        assert!(matches!(
            parse_scheme_spec("regular", 2),
            Ok(Scheme::Aligned(_))
        ));
        assert!(matches!(
            parse_scheme_spec("aligned:[*,1]:32", 2),
            Ok(Scheme::Aligned(_))
        ));
        assert!(matches!(
            parse_scheme_spec("directional:0=1/31/60,1=1/50:64", 2),
            Ok(Scheme::Directional(_))
        ));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_scheme_spec("bogus", 2).is_err());
        assert!(parse_scheme_spec("aligned", 2).is_err());
        assert!(parse_scheme_spec("directional", 2).is_err());
        assert!(parse_scheme_spec("directional:nope:64", 2).is_err());
        assert!(parse_scheme_spec("regular:notanumber", 2).is_err());
    }

    #[test]
    fn retile_spec_covers_all_three_verbs() {
        assert_eq!(
            parse_retile_spec("regular:64"),
            Ok(RetileSpec::Scheme("regular:64".into()))
        );
        assert_eq!(
            parse_retile_spec("--from-log"),
            Ok(RetileSpec::FromLog {
                distance: 0,
                frequency: 1,
                max_tile_bytes: DEFAULT_SPEC_TILE_KB * 1024,
            })
        );
        assert_eq!(
            parse_retile_spec("--from-log:4:2:64"),
            Ok(RetileSpec::FromLog {
                distance: 4,
                frequency: 2,
                max_tile_bytes: 64 * 1024,
            })
        );
        // Omitted middle parameters keep their defaults.
        assert_eq!(
            parse_retile_spec("--from-log::3"),
            Ok(RetileSpec::FromLog {
                distance: 0,
                frequency: 3,
                max_tile_bytes: DEFAULT_SPEC_TILE_KB * 1024,
            })
        );
        assert_eq!(
            parse_retile_spec("--defrag"),
            Ok(RetileSpec::Defrag { budget_bytes: None })
        );
        assert_eq!(
            parse_retile_spec("--defrag:256"),
            Ok(RetileSpec::Defrag {
                budget_bytes: Some(256 * 1024)
            })
        );
    }

    #[test]
    fn retile_spec_rejects_malformed_flags() {
        assert!(parse_retile_spec("--from-log:a").is_err());
        assert!(parse_retile_spec("--from-log:1:2:3:4").is_err());
        assert!(parse_retile_spec("--defrag:xkb").is_err());
        assert!(parse_retile_spec("--defragx").is_err());
        assert!(parse_retile_spec("--compact").is_err());
    }
}
