//! Textual tiling-scheme specifications.
//!
//! One compact grammar shared by every surface that accepts a scheme from
//! the outside world — the CLI's `create`/`retile` commands and the server's
//! `retile` request:
//!
//! ```text
//! single                          one tile for the whole domain
//! regular[:<kb>]                  regular aligned tiling, tile cap in KiB
//! aligned:<config>[:<kb>]        aligned tiling with a TileConfig, e.g. [*,1]
//! directional:<cuts>[:<kb>]      directional tiling; cuts = 0=1/31/60,1=1/50
//! ```
//!
//! Errors are plain strings aimed at the human who typed the spec.

use crate::aligned::{AlignedTiling, SingleTile};
use crate::config::TileConfig;
use crate::directional::{AxisPartition, DirectionalTiling};
use crate::strategy::Scheme;

/// Default tile-size cap applied when the spec omits `:<kb>`, in KiB.
pub const DEFAULT_SPEC_TILE_KB: u64 = 128;

/// Parses a textual scheme spec against an object of dimensionality `dim`.
///
/// # Errors
/// A human-readable message naming the malformed component.
pub fn parse_scheme_spec(spec: &str, dim: usize) -> Result<Scheme, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts[0] {
        "single" => Ok(Scheme::SingleTile(SingleTile)),
        "regular" => {
            let kb = tile_kb(parts.get(1))?;
            Ok(Scheme::Aligned(AlignedTiling::regular(dim, kb * 1024)))
        }
        "aligned" => {
            let config: TileConfig = parts
                .get(1)
                .ok_or("aligned needs a config, e.g. aligned:[*,1]:64")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            let kb = tile_kb(parts.get(2))?;
            Ok(Scheme::Aligned(AlignedTiling::new(config, kb * 1024)))
        }
        "directional" => {
            let cuts = parts
                .get(1)
                .ok_or("directional needs cuts, e.g. directional:0=1/31/60,1=1/50:64")?;
            let mut partitions = Vec::new();
            for axis_spec in cuts.split(',') {
                let (axis, points) = axis_spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad axis spec {axis_spec:?}"))?;
                let axis: usize = axis.parse().map_err(|e| format!("bad axis: {e}"))?;
                let points: Result<Vec<i64>, _> = points.split('/').map(str::parse).collect();
                partitions.push(AxisPartition::new(
                    axis,
                    points.map_err(|e| format!("bad cut point: {e}"))?,
                ));
            }
            let kb = tile_kb(parts.get(2))?;
            Ok(Scheme::Directional(DirectionalTiling::new(
                partitions,
                kb * 1024,
            )))
        }
        other => Err(format!(
            "unknown scheme {other:?} (expected single, regular, aligned, directional)"
        )),
    }
}

fn tile_kb(part: Option<&&str>) -> Result<u64, String> {
    match part {
        None => Ok(DEFAULT_SPEC_TILE_KB),
        Some(s) => s.parse().map_err(|e| format!("bad MaxTileSize: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_every_scheme_kind() {
        assert!(matches!(
            parse_scheme_spec("single", 3),
            Ok(Scheme::SingleTile(_))
        ));
        assert!(matches!(
            parse_scheme_spec("regular:64", 2),
            Ok(Scheme::Aligned(_))
        ));
        assert!(matches!(
            parse_scheme_spec("regular", 2),
            Ok(Scheme::Aligned(_))
        ));
        assert!(matches!(
            parse_scheme_spec("aligned:[*,1]:32", 2),
            Ok(Scheme::Aligned(_))
        ));
        assert!(matches!(
            parse_scheme_spec("directional:0=1/31/60,1=1/50:64", 2),
            Ok(Scheme::Directional(_))
        ));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_scheme_spec("bogus", 2).is_err());
        assert!(parse_scheme_spec("aligned", 2).is_err());
        assert!(parse_scheme_spec("directional", 2).is_err());
        assert!(parse_scheme_spec("directional:nope:64", 2).is_err());
        assert!(parse_scheme_spec("regular:notanumber", 2).is_err());
    }
}
