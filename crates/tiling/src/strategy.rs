//! The tiling-strategy abstraction and the closed set of built-in schemes.

use serde::{Deserialize, Serialize};
use tilestore_geometry::Domain;

use crate::aligned::{AlignedTiling, SingleTile};
use crate::directional::DirectionalTiling;
use crate::error::Result;
use crate::interest::AreasOfInterestTiling;
use crate::spec::TilingSpec;
use crate::statistic::StatisticTiling;

/// A tiling strategy: computes a tiling specification (a partition of the
/// spatial domain) from the domain and the cell size (§5.2).
pub trait TilingStrategy {
    /// Human-readable strategy name.
    fn name(&self) -> &'static str;

    /// The `MaxTileSize` this strategy enforces, in bytes.
    fn max_tile_size(&self) -> u64;

    /// Computes the tiling specification for `domain` with `cell_size`-byte
    /// cells.
    ///
    /// # Errors
    /// Strategy-specific validation errors; see [`crate::TilingError`].
    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec>;
}

/// The closed, serializable set of built-in tiling schemes. An engine stores
/// the scheme with each MDD object so later insertions (gradual growth) tile
/// consistently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Aligned tiling with a tile configuration (includes regular tiling).
    Aligned(AlignedTiling),
    /// The whole object as one tile.
    SingleTile(SingleTile),
    /// Tiling by user-defined partitions of the axes.
    Directional(DirectionalTiling),
    /// Tiling adapted to declared areas of interest.
    AreasOfInterest(AreasOfInterestTiling),
    /// Areas of interest derived automatically from an access log.
    Statistic(StatisticTiling),
}

impl Scheme {
    /// The paper's default: aligned regular tiling.
    #[must_use]
    pub fn default_for(dim: usize) -> Self {
        Scheme::Aligned(AlignedTiling::default_for(dim))
    }
}

impl TilingStrategy for Scheme {
    fn name(&self) -> &'static str {
        match self {
            Scheme::Aligned(s) => s.name(),
            Scheme::SingleTile(s) => s.name(),
            Scheme::Directional(s) => s.name(),
            Scheme::AreasOfInterest(s) => s.name(),
            Scheme::Statistic(s) => s.name(),
        }
    }

    fn max_tile_size(&self) -> u64 {
        match self {
            Scheme::Aligned(s) => s.max_tile_size(),
            Scheme::SingleTile(s) => s.max_tile_size(),
            Scheme::Directional(s) => s.max_tile_size(),
            Scheme::AreasOfInterest(s) => s.max_tile_size(),
            Scheme::Statistic(s) => s.max_tile_size(),
        }
    }

    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec> {
        match self {
            Scheme::Aligned(s) => s.partition(domain, cell_size),
            Scheme::SingleTile(s) => s.partition(domain, cell_size),
            Scheme::Directional(s) => s.partition(domain, cell_size),
            Scheme::AreasOfInterest(s) => s.partition(domain, cell_size),
            Scheme::Statistic(s) => s.partition(domain, cell_size),
        }
    }
}

impl From<AlignedTiling> for Scheme {
    fn from(s: AlignedTiling) -> Self {
        Scheme::Aligned(s)
    }
}

impl From<SingleTile> for Scheme {
    fn from(s: SingleTile) -> Self {
        Scheme::SingleTile(s)
    }
}

impl From<DirectionalTiling> for Scheme {
    fn from(s: DirectionalTiling) -> Self {
        Scheme::Directional(s)
    }
}

impl From<AreasOfInterestTiling> for Scheme {
    fn from(s: AreasOfInterestTiling) -> Self {
        Scheme::AreasOfInterest(s)
    }
}

impl From<StatisticTiling> for Scheme {
    fn from(s: StatisticTiling) -> Self {
        Scheme::Statistic(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scheme_is_aligned() {
        let s = Scheme::default_for(3);
        assert_eq!(s.name(), "aligned");
        let dom: Domain = "[0:9,0:9,0:9]".parse().unwrap();
        assert!(s.partition(&dom, 1).unwrap().covers(&dom));
    }

    #[test]
    fn scheme_serde_round_trip() {
        let s = Scheme::default_for(2);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scheme = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
