//! The tiling-strategy abstraction and the closed set of built-in schemes.

use tilestore_geometry::Domain;
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::aligned::{AlignedTiling, SingleTile};
use crate::directional::DirectionalTiling;
use crate::error::Result;
use crate::interest::AreasOfInterestTiling;
use crate::spec::TilingSpec;
use crate::statistic::StatisticTiling;

/// A tiling strategy: computes a tiling specification (a partition of the
/// spatial domain) from the domain and the cell size (§5.2).
pub trait TilingStrategy {
    /// Human-readable strategy name.
    fn name(&self) -> &'static str;

    /// The `MaxTileSize` this strategy enforces, in bytes.
    fn max_tile_size(&self) -> u64;

    /// Computes the tiling specification for `domain` with `cell_size`-byte
    /// cells.
    ///
    /// # Errors
    /// Strategy-specific validation errors; see [`crate::TilingError`].
    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec>;
}

/// The closed, serializable set of built-in tiling schemes. An engine stores
/// the scheme with each MDD object so later insertions (gradual growth) tile
/// consistently.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// Aligned tiling with a tile configuration (includes regular tiling).
    Aligned(AlignedTiling),
    /// The whole object as one tile.
    SingleTile(SingleTile),
    /// Tiling by user-defined partitions of the axes.
    Directional(DirectionalTiling),
    /// Tiling adapted to declared areas of interest.
    AreasOfInterest(AreasOfInterestTiling),
    /// Areas of interest derived automatically from an access log.
    Statistic(StatisticTiling),
}

impl Scheme {
    /// The paper's default: aligned regular tiling.
    #[must_use]
    pub fn default_for(dim: usize) -> Self {
        Scheme::Aligned(AlignedTiling::default_for(dim))
    }
}

impl TilingStrategy for Scheme {
    fn name(&self) -> &'static str {
        match self {
            Scheme::Aligned(s) => s.name(),
            Scheme::SingleTile(s) => s.name(),
            Scheme::Directional(s) => s.name(),
            Scheme::AreasOfInterest(s) => s.name(),
            Scheme::Statistic(s) => s.name(),
        }
    }

    fn max_tile_size(&self) -> u64 {
        match self {
            Scheme::Aligned(s) => s.max_tile_size(),
            Scheme::SingleTile(s) => s.max_tile_size(),
            Scheme::Directional(s) => s.max_tile_size(),
            Scheme::AreasOfInterest(s) => s.max_tile_size(),
            Scheme::Statistic(s) => s.max_tile_size(),
        }
    }

    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec> {
        let _span = tilestore_obs::tracer()
            .span_with("tiling_partition", || format!("strategy={}", self.name()));
        tilestore_obs::hot().partitions.inc();
        let spec = match self {
            Scheme::Aligned(s) => s.partition(domain, cell_size),
            Scheme::SingleTile(s) => s.partition(domain, cell_size),
            Scheme::Directional(s) => s.partition(domain, cell_size),
            Scheme::AreasOfInterest(s) => s.partition(domain, cell_size),
            Scheme::Statistic(s) => s.partition(domain, cell_size),
        }?;
        tilestore_obs::tracer().event("tiling_done", || format!("tiles={}", spec.len()));
        Ok(spec)
    }
}

impl ToJson for Scheme {
    /// Serializes as an object tagged by a `"kind"` field, with the
    /// variant's own fields merged in.
    fn to_json(&self) -> Json {
        let tag = |kind: &str| ("kind".to_string(), Json::Str(kind.to_string()));
        match self {
            Scheme::Aligned(s) => match s.to_json() {
                Json::Object(mut fields) => {
                    fields.insert(0, tag("aligned"));
                    Json::Object(fields)
                }
                other => other,
            },
            Scheme::SingleTile(_) => Json::Object(vec![tag("single_tile")]),
            Scheme::Directional(s) => match s.to_json() {
                Json::Object(mut fields) => {
                    fields.insert(0, tag("directional"));
                    Json::Object(fields)
                }
                other => other,
            },
            Scheme::AreasOfInterest(s) => match s.to_json() {
                Json::Object(mut fields) => {
                    fields.insert(0, tag("areas_of_interest"));
                    Json::Object(fields)
                }
                other => other,
            },
            Scheme::Statistic(s) => match s.to_json() {
                Json::Object(mut fields) => {
                    fields.insert(0, tag("statistic"));
                    Json::Object(fields)
                }
                other => other,
            },
        }
    }
}

impl FromJson for Scheme {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let kind = v
            .field("kind")?
            .as_str()
            .ok_or_else(|| JsonError::msg("scheme kind must be a string"))?;
        match kind {
            "aligned" => AlignedTiling::from_json(v).map(Scheme::Aligned),
            "single_tile" => Ok(Scheme::SingleTile(SingleTile)),
            "directional" => DirectionalTiling::from_json(v).map(Scheme::Directional),
            "areas_of_interest" => AreasOfInterestTiling::from_json(v).map(Scheme::AreasOfInterest),
            "statistic" => StatisticTiling::from_json(v).map(Scheme::Statistic),
            other => Err(JsonError::msg(format!("unknown scheme kind {other:?}"))),
        }
    }
}

impl From<AlignedTiling> for Scheme {
    fn from(s: AlignedTiling) -> Self {
        Scheme::Aligned(s)
    }
}

impl From<SingleTile> for Scheme {
    fn from(s: SingleTile) -> Self {
        Scheme::SingleTile(s)
    }
}

impl From<DirectionalTiling> for Scheme {
    fn from(s: DirectionalTiling) -> Self {
        Scheme::Directional(s)
    }
}

impl From<AreasOfInterestTiling> for Scheme {
    fn from(s: AreasOfInterestTiling) -> Self {
        Scheme::AreasOfInterest(s)
    }
}

impl From<StatisticTiling> for Scheme {
    fn from(s: StatisticTiling) -> Self {
        Scheme::Statistic(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scheme_is_aligned() {
        let s = Scheme::default_for(3);
        assert_eq!(s.name(), "aligned");
        let dom: Domain = "[0:9,0:9,0:9]".parse().unwrap();
        assert!(s.partition(&dom, 1).unwrap().covers(&dom));
    }

    #[test]
    fn scheme_json_round_trip() {
        use crate::config::TileConfig;
        use crate::directional::{AxisPartition, SubTiling};
        use crate::interest::AreasOfInterestTiling;
        use crate::statistic::{AccessRecord, StatisticTiling};

        let schemes: Vec<Scheme> = vec![
            Scheme::default_for(2),
            Scheme::SingleTile(SingleTile),
            Scheme::Directional(DirectionalTiling {
                partitions: vec![AxisPartition {
                    axis: 0,
                    points: vec![3, 7],
                }],
                max_tile_size: 4096,
                sub_tiling: SubTiling::Aligned("[4,*]".parse::<TileConfig>().unwrap()),
            }),
            Scheme::AreasOfInterest(AreasOfInterestTiling {
                areas: vec!["[0:4,0:4]".parse().unwrap()],
                max_tile_size: 1024,
                skip_merge: true,
            }),
            Scheme::Statistic(StatisticTiling {
                accesses: vec![AccessRecord::new("[1:2,3:4]".parse().unwrap(), 5)],
                distance_threshold: 2,
                frequency_threshold: 1,
                max_tile_size: 2048,
            }),
        ];
        for s in schemes {
            let json = tilestore_testkit::json::to_string(&s);
            let back: Scheme = tilestore_testkit::json::from_str(&json).unwrap();
            assert_eq!(back, s, "{json}");
        }
    }
}
