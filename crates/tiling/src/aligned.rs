//! Aligned tiling (§5.2, "Aligned Tiling").
//!
//! Tiles are laid out as a regular grid anchored at the domain's lowest
//! corner, with a tile format derived from the user's [`TileConfig`] and
//! `MaxTileSize`. Border tiles are clipped. This strategy subsumes regular
//! tiling (equal relative sizes), "tiling by cuts along a direction"
//! (a `*` configuration) and the default tiling.

use tilestore_geometry::{Domain, GridIter};
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::config::TileConfig;
use crate::error::Result;
use crate::spec::{TilingSpec, DEFAULT_MAX_TILE_SIZE};
use crate::strategy::TilingStrategy;

/// Aligned tiling with a tile configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedTiling {
    /// Relative tile-size preferences per direction.
    pub config: TileConfig,
    /// Maximum size of any produced tile, in bytes.
    pub max_tile_size: u64,
}

impl AlignedTiling {
    /// Aligned tiling with the given configuration and `MaxTileSize`.
    #[must_use]
    pub fn new(config: TileConfig, max_tile_size: u64) -> Self {
        AlignedTiling {
            config,
            max_tile_size,
        }
    }

    /// Regular tiling: equal relative sizes — the scheme of the paper's
    /// baseline (`Reg32K` … `Reg256K`).
    #[must_use]
    pub fn regular(dim: usize, max_tile_size: u64) -> Self {
        AlignedTiling {
            config: TileConfig::equal(dim),
            max_tile_size,
        }
    }

    /// The default tiling used when no strategy is specified (§5.2:
    /// "default tiling is performed … the default tiling is aligned").
    #[must_use]
    pub fn default_for(dim: usize) -> Self {
        Self::regular(dim, DEFAULT_MAX_TILE_SIZE)
    }

    /// The concrete tile format this strategy will use for `domain`.
    ///
    /// # Errors
    /// Propagates [`TileConfig::tile_format`] errors.
    pub fn tile_format(&self, domain: &Domain, cell_size: usize) -> Result<Vec<u64>> {
        self.config
            .tile_format(domain, cell_size, self.max_tile_size)
    }
}

impl TilingStrategy for AlignedTiling {
    fn name(&self) -> &'static str {
        "aligned"
    }

    fn max_tile_size(&self) -> u64 {
        self.max_tile_size
    }

    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec> {
        let format = self.tile_format(domain, cell_size)?;
        let tiles: Vec<Domain> = GridIter::new(domain.clone(), &format)?.collect();
        TilingSpec::validated(tiles, domain, cell_size, self.max_tile_size)
    }
}

/// Single-tile "tiling": the whole object in one tile, adequate for small
/// objects accessed as a whole (§5.1 access type (a)).
///
/// `MaxTileSize` is intentionally not enforced here — the object *is* the
/// tile; validation uses the object's own size as the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SingleTile;

impl ToJson for AlignedTiling {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("config", self.config.to_json()),
            ("max_tile_size", self.max_tile_size.to_json()),
        ])
    }
}

impl FromJson for AlignedTiling {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(AlignedTiling {
            config: TileConfig::from_json(v.field("config")?)?,
            max_tile_size: u64::from_json(v.field("max_tile_size")?)?,
        })
    }
}

impl TilingStrategy for SingleTile {
    fn name(&self) -> &'static str {
        "single-tile"
    }

    fn max_tile_size(&self) -> u64 {
        u64::MAX
    }

    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec> {
        let bytes = domain.size_bytes(cell_size)?;
        TilingSpec::validated(vec![domain.clone()], domain, cell_size, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TilingError;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn regular_tiling_covers_domain() {
        let dom = d("[0:99,0:99]");
        let spec = AlignedTiling::regular(2, 64).partition(&dom, 1).unwrap();
        assert!(spec.covers(&dom));
        assert!(spec.max_tile_bytes(1) <= 64);
        // interior tiles are 8x8 -> ceil(100/8)^2 = 169 tiles
        assert_eq!(spec.len(), 13 * 13);
    }

    #[test]
    fn starred_config_produces_slices() {
        // Figure 4: tiling by cuts along direction y of a 3-D animation.
        let dom = d("[0:120,0:159,0:119]");
        let strat = AlignedTiling::new("[*,1,*]".parse().unwrap(), 256 * 1024);
        let spec = strat.partition(&dom, 3).unwrap();
        assert!(spec.covers(&dom));
        // Every tile spans the full x and z extents.
        for t in spec.tiles() {
            assert_eq!(t.extent(0), 121);
            assert_eq!(t.extent(2), 120);
        }
    }

    #[test]
    fn default_tiling_is_regular() {
        let dom = d("[0:499,0:499]");
        let spec = AlignedTiling::default_for(2).partition(&dom, 4).unwrap();
        assert!(spec.covers(&dom));
        assert!(spec.max_tile_bytes(4) <= DEFAULT_MAX_TILE_SIZE);
    }

    #[test]
    fn single_tile_is_whole_object() {
        let dom = d("[0:9,0:9]");
        let spec = SingleTile.partition(&dom, 8).unwrap();
        assert_eq!(spec.tiles(), std::slice::from_ref(&dom));
        assert!(spec.covers(&dom));
    }

    #[test]
    fn cell_too_big_is_an_error() {
        let dom = d("[0:9,0:9]");
        let err = AlignedTiling::regular(2, 4).partition(&dom, 8).unwrap_err();
        assert!(matches!(err, TilingError::CellExceedsMaxTileSize { .. }));
    }

    #[test]
    fn paper_table2_regular_schemes() {
        // The Table 1 cube under Reg32K..Reg256K: all schemes must cover
        // the cube with tiles within the byte budget.
        let cube = d("[1:730,1:60,1:100]");
        for max in [32u64 * 1024, 64 * 1024, 128 * 1024, 256 * 1024] {
            let spec = AlignedTiling::regular(3, max).partition(&cube, 4).unwrap();
            assert!(spec.covers(&cube), "Reg{max} does not cover");
            assert!(spec.max_tile_bytes(4) <= max);
        }
    }
}
