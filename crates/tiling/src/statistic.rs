//! Statistic tiling (§5.2, "Statistic Tiling").
//!
//! Areas of interest are derived automatically from a list of logged
//! accesses: accesses closer than `DistanceThreshold` are merged into one
//! candidate area, and only candidates hit more often than
//! `FrequencyThreshold` become areas of interest. The areas-of-interest
//! algorithm then computes the tiling.

use tilestore_geometry::Domain;
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::aligned::AlignedTiling;
use crate::error::{Result, TilingError};
use crate::interest::AreasOfInterestTiling;
use crate::spec::TilingSpec;
use crate::strategy::TilingStrategy;

/// One logged access to an MDD object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// The region that was queried.
    pub region: Domain,
    /// How many times this exact region was accessed.
    pub count: u64,
}

impl AccessRecord {
    /// A record of `count` accesses to `region`.
    #[must_use]
    pub fn new(region: Domain, count: u64) -> Self {
        AccessRecord { region, count }
    }

    /// A record of a single access.
    #[must_use]
    pub fn once(region: Domain) -> Self {
        AccessRecord { region, count: 1 }
    }
}

impl ToJson for AccessRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("region", self.region.to_json()),
            ("count", self.count.to_json()),
        ])
    }
}

impl FromJson for AccessRecord {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(AccessRecord {
            region: Domain::from_json(v.field("region")?)?,
            count: u64::from_json(v.field("count")?)?,
        })
    }
}

/// A cluster of nearby accesses: candidate area of interest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessCluster {
    /// Hull of the clustered access regions.
    pub region: Domain,
    /// Total access count of the cluster.
    pub frequency: u64,
}

/// Statistic tiling: derive areas of interest from an access log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatisticTiling {
    /// The access log (from the application or database log file).
    pub accesses: Vec<AccessRecord>,
    /// Accesses within this Chebyshev distance are merged into one
    /// candidate area ("accesses closer than DistanceThreshold").
    pub distance_threshold: u64,
    /// A candidate becomes an area of interest only when its total access
    /// count strictly exceeds this ("only those which occur more than
    /// FrequencyThreshold").
    pub frequency_threshold: u64,
    /// Maximum size of any produced tile, in bytes.
    pub max_tile_size: u64,
}

impl StatisticTiling {
    /// Statistic tiling over `accesses`.
    #[must_use]
    pub fn new(
        accesses: Vec<AccessRecord>,
        distance_threshold: u64,
        frequency_threshold: u64,
        max_tile_size: u64,
    ) -> Self {
        StatisticTiling {
            accesses,
            distance_threshold,
            frequency_threshold,
            max_tile_size,
        }
    }

    /// Clusters the access log: regions within `distance_threshold` are
    /// merged (hulls taken) until no two clusters are that close. The
    /// fixpoint makes the result independent of log order.
    ///
    /// # Errors
    /// [`TilingError::Geometry`] when access regions have mixed
    /// dimensionalities.
    pub fn clusters(&self) -> Result<Vec<AccessCluster>> {
        let mut clusters: Vec<AccessCluster> = Vec::new();
        for rec in &self.accesses {
            clusters.push(AccessCluster {
                region: rec.region.clone(),
                frequency: rec.count,
            });
        }
        // Iterate merging to a fixpoint. Each pass is O(n²); logs are
        // filtered/aggregated upstream so n stays small.
        loop {
            let mut merged_any = false;
            let mut next: Vec<AccessCluster> = Vec::with_capacity(clusters.len());
            'outer: for c in clusters.drain(..) {
                for existing in &mut next {
                    // Strictly "closer than DistanceThreshold" (§5.2):
                    // threshold 0 never merges, keeping overlapping accesses
                    // as distinct areas of interest.
                    if existing.region.distance(&c.region)? < self.distance_threshold {
                        existing.region = existing.region.hull(&c.region)?;
                        existing.frequency += c.frequency;
                        merged_any = true;
                        continue 'outer;
                    }
                }
                next.push(c);
            }
            clusters = next;
            if !merged_any {
                break;
            }
        }
        Ok(clusters)
    }

    /// The derived areas of interest: clusters meeting the frequency
    /// threshold, clipped to `domain`.
    ///
    /// # Errors
    /// Propagates [`StatisticTiling::clusters`] errors.
    pub fn areas_of_interest(&self, domain: &Domain) -> Result<Vec<Domain>> {
        Ok(self
            .clusters()?
            .into_iter()
            .filter(|c| c.frequency > self.frequency_threshold)
            .filter_map(|c| c.region.intersection(domain))
            .collect())
    }
}

impl ToJson for StatisticTiling {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("accesses", self.accesses.to_json()),
            ("distance_threshold", self.distance_threshold.to_json()),
            ("frequency_threshold", self.frequency_threshold.to_json()),
            ("max_tile_size", self.max_tile_size.to_json()),
        ])
    }
}

impl FromJson for StatisticTiling {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(StatisticTiling {
            accesses: Vec::from_json(v.field("accesses")?)?,
            distance_threshold: u64::from_json(v.field("distance_threshold")?)?,
            frequency_threshold: u64::from_json(v.field("frequency_threshold")?)?,
            max_tile_size: u64::from_json(v.field("max_tile_size")?)?,
        })
    }
}

impl TilingStrategy for StatisticTiling {
    fn name(&self) -> &'static str {
        "statistic"
    }

    fn max_tile_size(&self) -> u64 {
        self.max_tile_size
    }

    /// Computes the tiling: areas-of-interest tiling over the derived areas,
    /// or the default aligned tiling when no cluster survives the filter
    /// (an empty or too-noisy log must still produce a usable tiling).
    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec> {
        let areas = self.areas_of_interest(domain)?;
        if areas.is_empty() {
            return AlignedTiling::regular(domain.dim(), self.max_tile_size)
                .partition(domain, cell_size);
        }
        match AreasOfInterestTiling::new(areas, self.max_tile_size).partition(domain, cell_size) {
            Err(TilingError::TooManyAreas { .. }) => {
                // Degenerate log with >128 distinct hot spots: fall back to
                // regular tiling rather than fail the load.
                AlignedTiling::regular(domain.dim(), self.max_tile_size)
                    .partition(domain, cell_size)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn close_accesses_merge_into_one_cluster() {
        let t = StatisticTiling::new(
            vec![
                AccessRecord::once(d("[0:4,0:4]")),
                AccessRecord::once(d("[6:9,0:4]")), // gap 1 on axis 0
                AccessRecord::once(d("[50:60,50:60]")),
            ],
            2, // merges anything strictly closer than 2
            0,
            1 << 20,
        );
        let clusters = t.clusters().unwrap();
        assert_eq!(clusters.len(), 2);
        let big = clusters.iter().find(|c| c.frequency == 2).unwrap();
        assert_eq!(big.region, d("[0:9,0:4]"));
    }

    #[test]
    fn chained_merging_reaches_fixpoint() {
        // a--b close, b--c close, a--c far: all three must end up together.
        let t = StatisticTiling::new(
            vec![
                AccessRecord::once(d("[0:1,0:1]")),
                AccessRecord::once(d("[3:4,0:1]")),
                AccessRecord::once(d("[6:7,0:1]")),
            ],
            2,
            0,
            1 << 20,
        );
        let clusters = t.clusters().unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].region, d("[0:7,0:1]"));
        assert_eq!(clusters[0].frequency, 3);
    }

    #[test]
    fn frequency_threshold_filters_rare_accesses() {
        let t = StatisticTiling::new(
            vec![
                AccessRecord::new(d("[0:4,0:4]"), 10),
                AccessRecord::once(d("[50:54,50:54]")),
            ],
            0,
            5,
            1 << 20,
        );
        let areas = t.areas_of_interest(&d("[0:99,0:99]")).unwrap();
        assert_eq!(areas, vec![d("[0:4,0:4]")]);
    }

    #[test]
    fn empty_log_falls_back_to_regular_tiling() {
        let t = StatisticTiling::new(vec![], 0, 0, 64);
        let dom = d("[0:19,0:19]");
        let spec = t.partition(&dom, 1).unwrap();
        assert!(spec.covers(&dom));
        assert!(spec.max_tile_bytes(1) <= 64);
    }

    #[test]
    fn derived_areas_drive_the_tiling() {
        let dom = d("[0:99,0:99]");
        let hot = d("[10:29,10:29]");
        let t = StatisticTiling::new(vec![AccessRecord::new(hot.clone(), 100)], 0, 10, 1 << 20);
        let spec = t.partition(&dom, 1).unwrap();
        assert!(spec.covers(&dom));
        // The guarantee transfers: a query to the hot area reads only it.
        assert_eq!(spec.bytes_touched(&hot, 1), hot.cells());
    }

    #[test]
    fn overlapping_accesses_stay_distinct_at_zero_threshold() {
        let a = d("[0:10,0:10]");
        let b = d("[5:20,5:20]");
        let t = StatisticTiling::new(
            vec![
                AccessRecord::new(a.clone(), 9),
                AccessRecord::new(b.clone(), 9),
            ],
            0,
            5,
            1 << 20,
        );
        let areas = t.areas_of_interest(&d("[0:99,0:99]")).unwrap();
        assert_eq!(areas.len(), 2);
        assert!(areas.contains(&a) && areas.contains(&b));
    }

    #[test]
    fn accesses_outside_domain_are_clipped() {
        let dom = d("[0:9,0:9]");
        let t = StatisticTiling::new(vec![AccessRecord::new(d("[5:20,5:20]"), 10)], 0, 1, 1 << 20);
        let areas = t.areas_of_interest(&dom).unwrap();
        assert_eq!(areas, vec![d("[5:9,5:9]")]);
        assert!(t.partition(&dom, 1).unwrap().covers(&dom));
    }
}
