//! Areas-of-interest tiling (§5.2, Fig. 6).
//!
//! An *area of interest* is a frequently accessed subarray. The algorithm
//! guarantees that "an access to an area of interest only reads data
//! belonging to the area of interest":
//!
//! 1. derive per-axis partitions from the lower/upper coordinates of the
//!    areas of interest;
//! 2. run directional tiling *without* sub-partitioning, producing a grid
//!    of blocks none of which crosses an area boundary;
//! 3. classify each block by its `IntersectCode` — one bit per area, set
//!    when the block intersects that area;
//! 4. merge neighbouring blocks with identical codes (axis-aligned merges
//!    only, so tiles remain boxes);
//! 5. split blocks exceeding `MaxTileSize` with minimal-split sub-tiling
//!    (splits stay inside one code region, preserving the guarantee).

use tilestore_geometry::{AxisRange, Domain};
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::directional::{blocks_from_starts, cartesian_blocks, minimal_split_format};
use crate::error::{Result, TilingError};
use crate::spec::{check_cell_fits, TilingSpec};
use crate::strategy::TilingStrategy;

/// Maximum number of areas of interest encodable in an [`IntersectCode`].
pub const MAX_AREAS: usize = 128;

/// Bitmask recording which areas of interest a block intersects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntersectCode(u128);

impl IntersectCode {
    /// Computes the code of `block` against `areas`.
    #[must_use]
    pub fn classify(block: &Domain, areas: &[Domain]) -> Self {
        let mut code = 0u128;
        for (j, a) in areas.iter().enumerate() {
            if block.intersects(a) {
                code |= 1 << j;
            }
        }
        IntersectCode(code)
    }

    /// Whether the code has no bits set (background block).
    #[must_use]
    pub fn is_background(&self) -> bool {
        self.0 == 0
    }

    /// The raw bitmask.
    #[must_use]
    pub fn bits(&self) -> u128 {
        self.0
    }
}

/// Areas-of-interest tiling.
///
/// ```
/// use tilestore_tiling::{AreasOfInterestTiling, TilingStrategy};
/// use tilestore_geometry::Domain;
///
/// let domain: Domain = "[0:99,0:99]".parse().unwrap();
/// let hot: Domain = "[10:39,20:59]".parse().unwrap();
/// let spec = AreasOfInterestTiling::new(vec![hot.clone()], 64 * 1024)
///     .partition(&domain, 2)
///     .unwrap();
/// // The §5.2 guarantee: a query to the area reads only the area.
/// assert_eq!(spec.bytes_touched(&hot, 2), hot.size_bytes(2).unwrap());
/// assert!(spec.covers(&domain));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreasOfInterestTiling {
    /// The declared areas of interest (may overlap each other).
    pub areas: Vec<Domain>,
    /// Maximum size of any produced tile, in bytes.
    pub max_tile_size: u64,
    /// Disable the merge step (step 4). Exposed for the ablation benchmark;
    /// `false` reproduces the paper's algorithm.
    pub skip_merge: bool,
}

impl ToJson for AreasOfInterestTiling {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("areas", self.areas.to_json()),
            ("max_tile_size", self.max_tile_size.to_json()),
            ("skip_merge", self.skip_merge.to_json()),
        ])
    }
}

impl FromJson for AreasOfInterestTiling {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(AreasOfInterestTiling {
            areas: Vec::from_json(v.field("areas")?)?,
            max_tile_size: u64::from_json(v.field("max_tile_size")?)?,
            // Absent in catalogs written before the ablation flag existed.
            skip_merge: match v.get("skip_merge") {
                Some(f) => bool::from_json(f)?,
                None => false,
            },
        })
    }
}

impl AreasOfInterestTiling {
    /// AOI tiling over `areas` with the given `MaxTileSize`.
    #[must_use]
    pub fn new(areas: Vec<Domain>, max_tile_size: u64) -> Self {
        AreasOfInterestTiling {
            areas,
            max_tile_size,
            skip_merge: false,
        }
    }

    /// Steps 1–2: per-axis blocks from the area bounds.
    ///
    /// For each axis, the block starts are the domain lower bound, every
    /// area lower bound, and every coordinate just above an area upper
    /// bound — so no block crosses an area boundary.
    fn dimension_blocks(&self, domain: &Domain) -> Result<Vec<Vec<AxisRange>>> {
        for (index, a) in self.areas.iter().enumerate() {
            if !domain.contains_domain(a) {
                return Err(TilingError::AreaOutsideDomain { index });
            }
        }
        let mut per_axis = Vec::with_capacity(domain.dim());
        for axis in 0..domain.dim() {
            let r = domain.axis(axis);
            let mut starts = vec![r.lo()];
            for a in &self.areas {
                let ar = a.axis(axis);
                if ar.lo() > r.lo() {
                    starts.push(ar.lo());
                }
                if ar.hi() < r.hi() {
                    starts.push(ar.hi() + 1);
                }
            }
            starts.sort_unstable();
            starts.dedup();
            per_axis.push(blocks_from_starts(r, &starts));
        }
        Ok(per_axis)
    }

    /// Steps 3–4: merge neighbouring blocks with identical intersect codes
    /// into maximal boxes, while staying within the cell budget.
    ///
    /// Blocks are merged pairwise along one axis at a time; two blocks merge
    /// when they have the same code, identical ranges on every other axis,
    /// are adjacent on the merge axis, and the merged block does not exceed
    /// `max_cells` (§5.2: "each partition *smaller than MaxTileSize* is then
    /// merged" — merging past the cap would only force a re-split in step 5).
    fn merge_same_code(
        blocks: Vec<(Domain, IntersectCode)>,
        max_cells: u64,
    ) -> Vec<(Domain, IntersectCode)> {
        let Some(first) = blocks.first() else {
            return blocks;
        };
        let dim = first.0.dim();
        let mut current = blocks;
        for axis in 0..dim {
            // Sort so that mergeable blocks are consecutive: key = ranges on
            // all other axes + code, then position on the merge axis.
            current.sort_by(|(a, ca), (b, cb)| {
                let key_a: Vec<(i64, i64)> = (0..dim)
                    .filter(|&i| i != axis)
                    .map(|i| (a.lo(i), a.hi(i)))
                    .collect();
                let key_b: Vec<(i64, i64)> = (0..dim)
                    .filter(|&i| i != axis)
                    .map(|i| (b.lo(i), b.hi(i)))
                    .collect();
                key_a
                    .cmp(&key_b)
                    .then(ca.bits().cmp(&cb.bits()))
                    .then(a.lo(axis).cmp(&b.lo(axis)))
            });
            let mut merged: Vec<(Domain, IntersectCode)> = Vec::with_capacity(current.len());
            for (block, code) in current {
                if let Some((last, last_code)) = merged.last_mut() {
                    let same_code = *last_code == code;
                    let adjacent = last.hi(axis) + 1 == block.lo(axis);
                    let aligned = (0..dim)
                        .filter(|&i| i != axis)
                        .all(|i| last.axis(i) == block.axis(i));
                    let fits = last
                        .cells()
                        .checked_add(block.cells())
                        .is_some_and(|c| c <= max_cells);
                    if same_code && adjacent && aligned && fits {
                        let grown = last
                            .with_axis(
                                axis,
                                AxisRange::new(last.lo(axis), block.hi(axis))
                                    .expect("adjacent ranges"),
                            )
                            .expect("axis in range");
                        *last = grown;
                        continue;
                    }
                }
                merged.push((block, code));
            }
            current = merged;
        }
        current
    }
}

impl TilingStrategy for AreasOfInterestTiling {
    fn name(&self) -> &'static str {
        "areas-of-interest"
    }

    fn max_tile_size(&self) -> u64 {
        self.max_tile_size
    }

    fn partition(&self, domain: &Domain, cell_size: usize) -> Result<TilingSpec> {
        if self.areas.is_empty() {
            return Err(TilingError::NoAreasOfInterest);
        }
        if self.areas.len() > MAX_AREAS {
            return Err(TilingError::TooManyAreas {
                got: self.areas.len(),
                max: MAX_AREAS,
            });
        }
        check_cell_fits(cell_size, self.max_tile_size)?;

        // (1)+(2) directional grid without sub-partitioning: the cartesian
        // product of the per-axis blocks induced by the area bounds.
        let grid = cartesian_blocks(&self.dimension_blocks(domain)?);

        // (3) classify.
        let classified: Vec<(Domain, IntersectCode)> = grid
            .into_iter()
            .map(|b| {
                let code = IntersectCode::classify(&b, &self.areas);
                (b, code)
            })
            .collect();

        // (4) merge, capped at the cell budget of MaxTileSize.
        let merged = if self.skip_merge {
            classified
        } else {
            let max_cells = (self.max_tile_size / cell_size as u64).max(1);
            Self::merge_same_code(classified, max_cells)
        };

        // (5) split oversize blocks with as few cuts as possible; the
        // splits stay inside one intersect-code region, preserving the
        // access guarantee.
        let budget = (self.max_tile_size / cell_size as u64).max(1);
        let mut tiles = Vec::with_capacity(merged.len());
        for (block, _) in merged {
            if block.size_bytes(cell_size)? <= self.max_tile_size {
                tiles.push(block);
            } else {
                let format = minimal_split_format(&block.extents(), budget);
                tiles.extend(tilestore_geometry::GridIter::new(block, &format)?);
            }
        }
        TilingSpec::validated(tiles, domain, cell_size, self.max_tile_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    /// The paper's §6.2 animation object and areas of interest (Table 5).
    fn animation() -> (Domain, Vec<Domain>) {
        (
            d("[0:120,0:159,0:119]"),
            vec![d("[0:120,80:120,25:60]"), d("[0:120,70:159,25:105]")],
        )
    }

    #[test]
    fn aoi_tiling_covers_and_respects_max_size() {
        let (dom, areas) = animation();
        for max in [32u64 * 1024, 64 * 1024, 128 * 1024, 256 * 1024] {
            let spec = AreasOfInterestTiling::new(areas.clone(), max)
                .partition(&dom, 3)
                .unwrap();
            assert!(spec.covers(&dom), "AI{} must cover", max / 1024);
            assert!(spec.max_tile_bytes(3) <= max);
        }
    }

    #[test]
    fn access_to_area_reads_only_area_bytes() {
        // The §5.2 guarantee: querying an area of interest touches only
        // tiles fully inside that area.
        let (dom, areas) = animation();
        let spec = AreasOfInterestTiling::new(areas.clone(), 256 * 1024)
            .partition(&dom, 3)
            .unwrap();
        for a in &areas {
            let touched = spec.bytes_touched(a, 3);
            assert_eq!(
                touched,
                a.size_bytes(3).unwrap(),
                "query to {a} reads {touched} bytes"
            );
        }
    }

    #[test]
    fn no_tile_crosses_area_boundary() {
        let (dom, areas) = animation();
        let spec = AreasOfInterestTiling::new(areas.clone(), 128 * 1024)
            .partition(&dom, 3)
            .unwrap();
        for t in spec.tiles() {
            for a in &areas {
                let inter = t.intersection(a);
                if let Some(i) = inter {
                    assert_eq!(
                        &i, t,
                        "tile {t} partially overlaps area {a} (intersection {i})"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_reduces_tile_count() {
        // At 1 MB the cell budget is large enough for same-code neighbours
        // to merge; skipping the merge step must leave strictly more tiles.
        let (dom, areas) = animation();
        let max = 1024 * 1024;
        let merged = AreasOfInterestTiling::new(areas.clone(), max)
            .partition(&dom, 3)
            .unwrap();
        let mut unmerged_strategy = AreasOfInterestTiling::new(areas, max);
        unmerged_strategy.skip_merge = true;
        let unmerged = unmerged_strategy.partition(&dom, 3).unwrap();
        assert!(
            merged.len() < unmerged.len(),
            "merge: {} vs unmerged: {}",
            merged.len(),
            unmerged.len()
        );
        assert!(unmerged.covers(&dom));
    }

    #[test]
    fn merge_never_exceeds_max_tile_size() {
        let (dom, areas) = animation();
        for max in [64 * 1024, 256 * 1024, 1024 * 1024] {
            let spec = AreasOfInterestTiling::new(areas.clone(), max)
                .partition(&dom, 3)
                .unwrap();
            assert!(spec.max_tile_bytes(3) <= max);
        }
    }

    #[test]
    fn single_area_equal_to_domain_is_single_partition() {
        let dom = d("[0:9,0:9]");
        let spec = AreasOfInterestTiling::new(vec![dom.clone()], 1 << 20)
            .partition(&dom, 1)
            .unwrap();
        assert_eq!(spec.len(), 1);
        assert!(spec.covers(&dom));
    }

    #[test]
    fn overlapping_areas_get_distinct_codes() {
        let a = d("[0:5,0:5]");
        let b = d("[3:9,3:9]");
        let only_a = IntersectCode::classify(&d("[0:2,0:2]"), &[a.clone(), b.clone()]);
        let both = IntersectCode::classify(&d("[3:5,3:5]"), &[a.clone(), b.clone()]);
        let only_b = IntersectCode::classify(&d("[6:9,6:9]"), &[a.clone(), b.clone()]);
        let neither = IntersectCode::classify(&d("[0:2,6:9]"), &[a, b]);
        assert_eq!(only_a.bits(), 0b01);
        assert_eq!(both.bits(), 0b11);
        assert_eq!(only_b.bits(), 0b10);
        assert!(neither.is_background());
    }

    #[test]
    fn validation_errors() {
        let dom = d("[0:9,0:9]");
        assert!(matches!(
            AreasOfInterestTiling::new(vec![], 1024).partition(&dom, 1),
            Err(TilingError::NoAreasOfInterest)
        ));
        assert!(matches!(
            AreasOfInterestTiling::new(vec![d("[0:20,0:5]")], 1024).partition(&dom, 1),
            Err(TilingError::AreaOutsideDomain { index: 0 })
        ));
    }

    #[test]
    fn corner_area_produces_background_tiles() {
        let dom = d("[0:9,0:9]");
        let area = d("[0:4,0:4]");
        let spec = AreasOfInterestTiling::new(vec![area.clone()], 1 << 20)
            .partition(&dom, 1)
            .unwrap();
        assert!(spec.covers(&dom));
        // The area itself must be exactly one tile at this generous size.
        assert!(spec.tiles().contains(&area));
        assert_eq!(spec.bytes_touched(&area, 1), 25);
    }
}
