//! Property-based tests: every tiling strategy must produce a valid,
//! complete partition, and the areas-of-interest guarantee must hold for
//! arbitrary area sets.

use tilestore_geometry::Domain;
use tilestore_testkit::prop::{check, Source};
use tilestore_testkit::{prop_assert, prop_assert_eq};
use tilestore_tiling::{
    AccessRecord, AlignedTiling, AreasOfInterestTiling, AxisPartition, DirectionalTiling, Extent,
    StatisticTiling, TileConfig, TilingStrategy,
};

/// A random domain of dimensionality 1..=3 with modest extents.
fn domain(s: &mut Source) -> Domain {
    let d = s.usize_in(1, 3);
    let bounds: Vec<(i64, i64)> = (0..d)
        .map(|_| {
            let lo = s.i64_in(-50, 49);
            let ext = s.i64_in(1, 59);
            (lo, lo + ext)
        })
        .collect();
    Domain::from_bounds(&bounds).unwrap()
}

/// A random tile configuration matching `dim`, possibly with stars.
fn config(s: &mut Source, dim: usize) -> TileConfig {
    let entries: Vec<Extent> = (0..dim)
        .map(|_| {
            if s.bool() {
                Extent::Unbounded
            } else {
                Extent::Fixed(s.u64_in(1, 7))
            }
        })
        .collect();
    TileConfig::new(entries).unwrap()
}

/// A random subdomain of `dom`.
fn subdomain(s: &mut Source, dom: &Domain) -> Domain {
    let bounds: Vec<(i64, i64)> = dom
        .ranges()
        .iter()
        .map(|r| {
            let a = s.i64_in(r.lo(), r.hi());
            let b = s.i64_in(a, r.hi());
            (a, b)
        })
        .collect();
    Domain::from_bounds(&bounds).unwrap()
}

#[test]
fn aligned_tiling_is_complete_partition() {
    check(
        "aligned_tiling_is_complete_partition",
        64,
        |s| (domain(s), s.u64_in(1, 15), s.usize_in(1, 7)),
        |(dom, max_kb, cell)| {
            let strat = AlignedTiling::regular(dom.dim(), max_kb * 1024);
            let spec = strat.partition(dom, *cell).unwrap();
            prop_assert!(spec.covers(dom));
            prop_assert!(spec.max_tile_bytes(*cell) <= max_kb * 1024);
            Ok(())
        },
    );
}

#[test]
fn aligned_with_random_config_is_complete() {
    check(
        "aligned_with_random_config_is_complete",
        64,
        |s| {
            let dom = domain(s);
            let cfg = config(s, dom.dim());
            (dom, cfg, s.u64_in(1, 15))
        },
        |(dom, cfg, max_kb)| {
            let strat = AlignedTiling::new(cfg.clone(), max_kb * 1024);
            let spec = strat.partition(dom, 2).unwrap();
            prop_assert!(spec.covers(dom));
            prop_assert!(spec.max_tile_bytes(2) <= max_kb * 1024);
            Ok(())
        },
    );
}

#[test]
fn directional_tiling_respects_cuts() {
    check(
        "directional_tiling_respects_cuts",
        64,
        |s| {
            let dom = domain(s);
            let cuts_seed: Vec<f64> = s.vec_of(1, 3, |s| 0.1 + 0.8 * s.f64_unit());
            (dom, cuts_seed, s.u64_in(1, 7))
        },
        |(dom, cuts_seed, max_kb)| {
            // Derive valid interior cut points on axis 0 from the seed.
            let r = dom.axis(0);
            let mut points: Vec<i64> = vec![r.lo()];
            for s in cuts_seed {
                let p = r.lo() + ((r.extent() as f64) * s) as i64;
                if p > *points.last().unwrap() && p < r.hi() {
                    points.push(p);
                }
            }
            points.push(r.hi());
            if points.len() < 2 || points.windows(2).any(|w| w[0] >= w[1]) {
                return Ok(());
            }
            let interior: Vec<i64> = points[1..points.len() - 1].to_vec();
            let strat = DirectionalTiling::new(vec![AxisPartition::new(0, points)], max_kb * 1024);
            let spec = strat.partition(dom, 1).unwrap();
            prop_assert!(spec.covers(dom));
            prop_assert!(spec.max_tile_bytes(1) <= max_kb * 1024);
            for tile in spec.tiles() {
                for &cut in &interior {
                    prop_assert!(
                        !(tile.lo(0) < cut && cut <= tile.hi(0)),
                        "tile {} crosses cut {}",
                        tile,
                        cut
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn aoi_guarantee_holds_for_random_areas() {
    check(
        "aoi_guarantee_holds_for_random_areas",
        64,
        |s| {
            let dom = domain(s);
            let n = s.usize_in(1, 3);
            let areas: Vec<Domain> = (0..n).map(|_| subdomain(s, &dom)).collect();
            (dom, areas, s.u64_in(1, 15))
        },
        |(dom, areas, max_kb)| {
            let strat = AreasOfInterestTiling::new(areas.clone(), max_kb * 1024);
            let spec = strat.partition(dom, 1).unwrap();
            prop_assert!(spec.covers(dom));
            prop_assert!(spec.max_tile_bytes(1) <= max_kb * 1024);
            // §5.2 guarantee: querying any declared area reads only its bytes.
            for a in areas {
                prop_assert_eq!(spec.bytes_touched(a, 1), a.cells());
            }
            Ok(())
        },
    );
}

#[test]
fn statistic_tiling_always_produces_valid_cover() {
    check(
        "statistic_tiling_always_produces_valid_cover",
        64,
        |s| {
            let dom = domain(s);
            let n = s.usize_in(0, 4);
            let records: Vec<AccessRecord> = (0..n)
                .map(|_| {
                    let region = subdomain(s, &dom);
                    AccessRecord::new(region, s.u64_in(1, 9))
                })
                .collect();
            let dist = s.u64_in(0, 4);
            let freq = s.u64_in(1, 7);
            (dom, records, dist, freq, s.u64_in(1, 15))
        },
        |(dom, records, dist, freq, max_kb)| {
            let strat = StatisticTiling::new(records.clone(), *dist, *freq, max_kb * 1024);
            let spec = strat.partition(dom, 1).unwrap();
            prop_assert!(spec.covers(dom));
            prop_assert!(spec.max_tile_bytes(1) <= max_kb * 1024);
            Ok(())
        },
    );
}

/// The tile-format computation itself: the product never exceeds the cell
/// budget, every entry is >= 1, and no entry exceeds the domain extent.
#[test]
fn tile_format_respects_budget_and_extents() {
    check(
        "tile_format_respects_budget_and_extents",
        128,
        |s| {
            let dom = domain(s);
            let cfg = config(s, dom.dim());
            (dom, cfg, s.usize_in(1, 8), s.u64_in(1, 63))
        },
        |(dom, cfg, cell, max_kb)| {
            let format = cfg.tile_format(dom, *cell, max_kb * 1024).unwrap();
            let budget = (max_kb * 1024) / *cell as u64;
            prop_assert!(format.iter().product::<u64>() <= budget.max(1));
            for (axis, &t) in format.iter().enumerate() {
                prop_assert!(t >= 1);
                prop_assert!(t <= dom.extent(axis).max(1));
            }
            Ok(())
        },
    );
}

/// Minimal-split formats stay within budget and only ever shrink axes.
#[test]
fn minimal_split_format_is_sound() {
    check(
        "minimal_split_format_is_sound",
        128,
        |s| {
            let extents = s.vec_of(1, 4, |s| s.u64_in(1, 199));
            (extents, s.u64_in(1, 9_999))
        },
        |(extents, budget)| {
            let format = tilestore_tiling::minimal_split_format(extents, *budget);
            prop_assert_eq!(format.len(), extents.len());
            for (f, e) in format.iter().zip(extents) {
                prop_assert!(*f >= 1 && f <= e);
            }
            // Either within budget, or every axis is already at 1 cell.
            let product: u64 = format.iter().product();
            prop_assert!(product <= *budget || format.iter().all(|&f| f == 1));
            Ok(())
        },
    );
}
