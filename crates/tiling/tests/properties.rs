//! Property-based tests: every tiling strategy must produce a valid,
//! complete partition, and the areas-of-interest guarantee must hold for
//! arbitrary area sets.

use proptest::prelude::*;
use tilestore_geometry::Domain;
use tilestore_tiling::{
    AccessRecord, AlignedTiling, AreasOfInterestTiling, AxisPartition, DirectionalTiling,
    Extent, StatisticTiling, TileConfig, TilingStrategy,
};

/// A random domain of dimensionality 1..=3 with modest extents.
fn domain() -> impl Strategy<Value = Domain> {
    (1usize..=3).prop_flat_map(|d| {
        proptest::collection::vec((-50i64..50, 1i64..60), d).prop_map(|bounds| {
            let bounds: Vec<(i64, i64)> = bounds
                .into_iter()
                .map(|(lo, ext)| (lo, lo + ext))
                .collect();
            Domain::from_bounds(&bounds).unwrap()
        })
    })
}

/// A random tile configuration matching `dim`, possibly with stars.
fn config(dim: usize) -> impl Strategy<Value = TileConfig> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..8).prop_map(Extent::Fixed),
            Just(Extent::Unbounded)
        ],
        dim,
    )
    .prop_map(|entries| TileConfig::new(entries).unwrap())
}

/// A random subdomain of `dom`.
fn subdomain(dom: Domain) -> impl Strategy<Value = Domain> {
    let per_axis: Vec<BoxedStrategy<(i64, i64)>> = dom
        .ranges()
        .iter()
        .map(|r| {
            let (lo, hi) = (r.lo(), r.hi());
            (lo..=hi)
                .prop_flat_map(move |a| (Just(a), a..=hi))
                .boxed()
        })
        .collect();
    per_axis.prop_map(|bounds| Domain::from_bounds(&bounds).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aligned_tiling_is_complete_partition(
        dom in domain(),
        max_kb in 1u64..16,
        cell in 1usize..8,
    ) {
        let dim = dom.dim();
        let strat = AlignedTiling::regular(dim, max_kb * 1024);
        let spec = strat.partition(&dom, cell).unwrap();
        prop_assert!(spec.covers(&dom));
        prop_assert!(spec.max_tile_bytes(cell) <= max_kb * 1024);
    }

    #[test]
    fn aligned_with_random_config_is_complete(
        (dom, cfg) in domain().prop_flat_map(|d| {
            let dim = d.dim();
            (Just(d), config(dim))
        }),
        max_kb in 1u64..16,
    ) {
        let strat = AlignedTiling::new(cfg, max_kb * 1024);
        let spec = strat.partition(&dom, 2).unwrap();
        prop_assert!(spec.covers(&dom));
        prop_assert!(spec.max_tile_bytes(2) <= max_kb * 1024);
    }

    #[test]
    fn directional_tiling_respects_cuts(
        dom in domain(),
        cuts_seed in proptest::collection::vec(0.1f64..0.9, 1..4),
        max_kb in 1u64..8,
    ) {
        // Derive valid interior cut points on axis 0 from the seed.
        let r = dom.axis(0);
        let mut points: Vec<i64> = vec![r.lo()];
        for s in &cuts_seed {
            let p = r.lo() + ((r.extent() as f64) * s) as i64;
            if p > *points.last().unwrap() && p < r.hi() {
                points.push(p);
            }
        }
        points.push(r.hi());
        if points.len() < 2 || points.windows(2).any(|w| w[0] >= w[1]) {
            return Ok(());
        }
        let interior: Vec<i64> = points[1..points.len() - 1].to_vec();
        let strat = DirectionalTiling::new(
            vec![AxisPartition::new(0, points)],
            max_kb * 1024,
        );
        let spec = strat.partition(&dom, 1).unwrap();
        prop_assert!(spec.covers(&dom));
        prop_assert!(spec.max_tile_bytes(1) <= max_kb * 1024);
        for tile in spec.tiles() {
            for &cut in &interior {
                prop_assert!(
                    !(tile.lo(0) < cut && cut <= tile.hi(0)),
                    "tile {} crosses cut {}", tile, cut
                );
            }
        }
    }

    #[test]
    fn aoi_guarantee_holds_for_random_areas(
        (dom, areas) in domain().prop_flat_map(|d| {
            let areas = proptest::collection::vec(subdomain(d.clone()), 1..4);
            (Just(d), areas)
        }),
        max_kb in 1u64..16,
    ) {
        let strat = AreasOfInterestTiling::new(areas.clone(), max_kb * 1024);
        let spec = strat.partition(&dom, 1).unwrap();
        prop_assert!(spec.covers(&dom));
        prop_assert!(spec.max_tile_bytes(1) <= max_kb * 1024);
        // §5.2 guarantee: querying any declared area reads only its bytes.
        for a in &areas {
            prop_assert_eq!(spec.bytes_touched(a, 1), a.cells());
        }
    }

    #[test]
    fn statistic_tiling_always_produces_valid_cover(
        (dom, accesses) in domain().prop_flat_map(|d| {
            let acc = proptest::collection::vec(
                (subdomain(d.clone()), 1u64..10),
                0..5,
            );
            (Just(d), acc)
        }),
        dist in 0u64..5,
        freq in 1u64..8,
        max_kb in 1u64..16,
    ) {
        let records: Vec<AccessRecord> = accesses
            .into_iter()
            .map(|(r, c)| AccessRecord::new(r, c))
            .collect();
        let strat = StatisticTiling::new(records, dist, freq, max_kb * 1024);
        let spec = strat.partition(&dom, 1).unwrap();
        prop_assert!(spec.covers(&dom));
        prop_assert!(spec.max_tile_bytes(1) <= max_kb * 1024);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tile-format computation itself: the product never exceeds the
    /// cell budget, every entry is >= 1, and no entry exceeds the domain
    /// extent.
    #[test]
    fn tile_format_respects_budget_and_extents(
        dom in domain(),
        entries in proptest::collection::vec(
            prop_oneof![
                (1u64..10).prop_map(Extent::Fixed),
                Just(Extent::Unbounded),
            ],
            1..4,
        ),
        cell in 1usize..9,
        max_kb in 1u64..64,
    ) {
        if entries.len() != dom.dim() {
            return Ok(());
        }
        let cfg = TileConfig::new(entries).unwrap();
        let format = cfg.tile_format(&dom, cell, max_kb * 1024).unwrap();
        let budget = (max_kb * 1024) / cell as u64;
        prop_assert!(format.iter().product::<u64>() <= budget.max(1));
        for (axis, &t) in format.iter().enumerate() {
            prop_assert!(t >= 1);
            prop_assert!(t <= dom.extent(axis).max(1));
        }
    }

    /// Minimal-split formats stay within budget and only ever shrink axes.
    #[test]
    fn minimal_split_format_is_sound(
        extents in proptest::collection::vec(1u64..200, 1..5),
        budget in 1u64..10_000,
    ) {
        let format = tilestore_tiling::minimal_split_format(&extents, budget);
        prop_assert_eq!(format.len(), extents.len());
        for (f, e) in format.iter().zip(&extents) {
            prop_assert!(*f >= 1 && f <= e);
        }
        // Either within budget, or every axis is already at 1 cell.
        let product: u64 = format.iter().product();
        prop_assert!(product <= budget || format.iter().all(|&f| f == 1));
    }
}
