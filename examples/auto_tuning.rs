//! Automatic tiling from access statistics (§5.2 "Statistic Tiling").
//!
//! An object starts with the default tiling; the engine logs every query.
//! After a workload phase, `auto_retile` clusters the log into areas of
//! interest (`DistanceThreshold`, `FrequencyThreshold`) and re-tiles the
//! object to match — queries to the hot regions then read zero waste.
//!
//! ```text
//! cargo run --release --example auto_tuning
//! ```

use tilestore::{Array, CellType, CostModel, Database, DefDomain, Domain, MddType, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory()?;
    let domain: Domain = "[0:511,0:511]".parse()?;
    db.create_object(
        "map",
        MddType::new(CellType::of::<u16>(), DefDomain::unlimited(2)?),
        Scheme::default_for(2),
    )?;
    let data = Array::from_fn(domain.clone(), |p| ((p[0] * 7 + p[1]) % 1000) as u16)?;
    db.insert("map", &data)?;
    println!(
        "loaded {} under default tiling: {} tiles",
        domain,
        db.object("map")?.tile_count()
    );

    // Workload phase: two hot regions are hammered, plus noise. The two
    // nearby rectangles will be clustered into one area of interest.
    let hot_a: Domain = "[64:127,64:127]".parse()?;
    let hot_a2: Domain = "[64:127,130:191]".parse()?; // 2 cells from hot_a
    let hot_b: Domain = "[400:475,380:460]".parse()?;
    let noise: Domain = "[0:20,490:511]".parse()?;
    for _ in 0..20 {
        db.range_query("map", &hot_a)?;
        db.range_query("map", &hot_a2)?;
    }
    for _ in 0..12 {
        db.range_query("map", &hot_b)?;
    }
    db.range_query("map", &noise)?; // once: below the frequency threshold

    let model = CostModel::classic_disk();
    let before = { db.range_query("map", &hot_a)? }.stats;
    println!(
        "before tuning: hot query reads {} bytes in {} tiles (t_totalcpu {:.4}s)",
        before.io.bytes_read,
        before.tiles_read,
        before.times(&model).total_cpu()
    );

    let log = db.access_log("map")?;
    println!(
        "access log: {} accesses over {} distinct regions",
        log.total_accesses(),
        log.distinct_regions()
    );

    // Adapt: merge accesses closer than 4 cells, keep clusters hit >= 10
    // times, cap tiles at 64 KB.
    let retile = db.auto_retile("map", 4, 10, 64 * 1024)?;
    println!(
        "auto-retile: {} -> {} tiles ({} bytes rewritten)",
        retile.tiles_before, retile.tiles_after, retile.bytes_rewritten
    );

    let __q = db.range_query("map", &hot_a)?;
    let (out, after) = (__q.array, __q.stats);
    println!(
        "after tuning:  hot query reads {} bytes in {} tiles (t_totalcpu {:.4}s)",
        after.io.bytes_read,
        after.tiles_read,
        after.times(&model).total_cpu()
    );

    // The two nearby hot rectangles were clustered into one area of
    // interest — their hull — so the hot query reads exactly that area's
    // tile(s): no background data, and the data is intact.
    assert_eq!(out, data.extract(&hot_a)?);
    assert!(after.io.bytes_read <= before.io.bytes_read);
    let clustered_area = hot_a.hull(&hot_a2)?;
    assert_eq!(
        after.cells_processed,
        clustered_area.cells(),
        "reads exactly the clustered area of interest"
    );

    let speedup = before.times(&model).total_cpu() / after.times(&model).total_cpu();
    println!("hot-query speedup from adaptation: {speedup:.1}x");
    Ok(())
}
