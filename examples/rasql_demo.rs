//! The RasQL-style query surface (the paper drove its evaluation through
//! RasQL, the RasDaMan query language).
//!
//! ```text
//! cargo run --release --example rasql_demo
//! ```

use tilestore::rasql::{execute, Value};
use tilestore::{
    AlignedTiling, Array, AxisPartition, CellType, Database, DefDomain, DirectionalTiling, Domain,
    MddType, Scheme,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory()?;

    // A quarterly sales cube: 90 days x 60 products x 100 stores, tiled
    // along category boundaries.
    db.create_object(
        "sales",
        MddType::new(CellType::of::<u32>(), DefDomain::unlimited(3)?),
        Scheme::Directional(DirectionalTiling::new(
            vec![
                AxisPartition::new(0, vec![1, 31, 59, 90]), // months
                AxisPartition::new(1, vec![1, 27, 42, 60]), // product classes
            ],
            64 * 1024,
        )),
    )?;
    let dom: Domain = "[1:90,1:60,1:100]".parse()?;
    db.insert(
        "sales",
        &Array::from_fn(dom, |p| ((p[0] + p[1] * p[2]) % 20) as u32)?,
    )?;

    // And a small image under regular tiling.
    db.create_object(
        "img",
        MddType::new(CellType::of::<u8>(), DefDomain::unlimited(2)?),
        Scheme::Aligned(AlignedTiling::regular(2, 4096)),
    )?;
    db.insert(
        "img",
        &Array::from_fn("[0:63,0:63]".parse()?, |p| ((p[0] * p[1]) % 256) as u8)?,
    )?;

    let queries = [
        // (b) range query: a sub-image.
        "SELECT img[16:47, 16:47] FROM img",
        // (c) partial range: February, all products, district [27:34].
        "SELECT sales[31:58, *, 27:34] FROM sales",
        // (d) section: day 45 as a 2-D products x stores slab.
        "SELECT sales[45, *, *] FROM sales",
        // condensers over a category block — the §5.1(c) sub-aggregation.
        "SELECT sum_cells(sales[1:30, 1:26, *]) FROM sales",
        "SELECT avg_cells(sales[1:30, 1:26, *]) FROM sales",
        "SELECT max_cells(sales) FROM sales",
        "SELECT count_cells(sales[1:5, 1:5, 1:5]) FROM sales",
        // induced operations: scalar arithmetic and comparisons cell-wise.
        "SELECT img[0:3,0:3] + 100 FROM img",
        "SELECT count_cells(sales > 15) FROM sales",
        "SELECT avg_cells(sales[1:30, *, *] * 2 - 1) FROM sales",
    ];

    // One snapshot serves the whole demo: every statement reads the same
    // catalog epoch even if a writer were running concurrently.
    let snap = db.begin_read();
    for q in queries {
        let (value, stats) = execute(&snap, q)?;
        let rendered = match &value {
            Value::Array(a) => format!("array over {} ({} cells)", a.domain(), a.domain().cells()),
            Value::Number(n) => format!("{n}"),
            Value::Count(c) => format!("{c} cells"),
            Value::Bool(b) => format!("{b}"),
        };
        println!(
            "{q}\n  => {rendered}   [{} tiles read, {} bytes]",
            stats.tiles_read, stats.io.bytes_read
        );
    }

    // Parse errors are located precisely.
    let err = execute(&snap, "SELECT sales[1:2 FROM sales").unwrap_err();
    println!("\nbad query rejected: {err}");

    Ok(())
}
