//! Sparse OLAP data with selective compression and partial coverage — the
//! paper's §8: "two important features when supporting sparse data".
//!
//! A year x product x store cube where only a few category clusters hold
//! sales. Partial coverage keeps unsold regions out of storage entirely;
//! selective per-tile compression shrinks the in-cluster tiles; and
//! category-aligned tiling keeps every sub-aggregation waste-free.
//!
//! ```text
//! cargo run --release --example sparse_olap
//! ```

use tilestore::rasql::execute;
use tilestore::{
    Array, AxisPartition, CellType, CompressionPolicy, Database, DefDomain, DirectionalTiling,
    Domain, MddType, Scheme,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory()?;
    db.create_object(
        "sales",
        MddType::new(CellType::of::<u32>(), DefDomain::unlimited(3)?),
        Scheme::Directional(DirectionalTiling::new(
            vec![
                AxisPartition::new(0, vec![1, 91, 182, 274, 365]), // quarters
                AxisPartition::new(1, vec![1, 27, 42, 60]),        // product classes
                AxisPartition::new(2, vec![1, 51, 100]),           // two regions
            ],
            128 * 1024,
        )),
    )?;
    db.set_compression("sales", CompressionPolicy::selective_default())?;

    // Partial coverage: insert only the two clusters that actually sold.
    // Everything else stays unstored and reads back as 0.
    let q1_cluster: Domain = "[1:90,1:26,1:50]".parse()?;
    let q3_cluster: Domain = "[182:273,42:59,51:99]".parse()?;
    for cluster in [&q1_cluster, &q3_cluster] {
        let data = Array::from_fn(cluster.clone(), |p| {
            if (p[0] * 31 + p[1] * 7 + p[2]) % 9 == 0 {
                ((p[0] + p[2]) % 300) as u32
            } else {
                0
            }
        })?;
        db.insert("sales", &data)?;
    }

    let obj = db.object("sales")?;
    let logical = obj
        .current_domain
        .as_ref()
        .expect("object holds data")
        .size_bytes(4)?;
    println!(
        "current domain {} = {:.1} MiB logical",
        obj.current_domain.as_ref().unwrap(),
        logical as f64 / (1024.0 * 1024.0)
    );
    println!(
        "covered (partial coverage): {:.1} MiB in {} tiles",
        obj.stored_bytes() as f64 / (1024.0 * 1024.0),
        obj.tile_count()
    );
    println!(
        "physical after selective compression: {:.1} KiB",
        db.object_physical_bytes("sales")? as f64 / 1024.0
    );

    // Sub-aggregations through the query language; the Q1 query touches
    // only cluster tiles, the empty-quarter query touches nothing at all.
    for q in [
        "SELECT sum_cells(sales[1:90, 1:26, 1:50]) FROM sales",
        "SELECT sum_cells(sales[91:181, *, *]) FROM sales", // unsold quarter
        "SELECT count_cells(sales[182:273, 42:59, 51:99]) FROM sales",
    ] {
        let (value, stats) = execute(&db.begin_read(), q)?;
        println!(
            "{q}\n  => {value:?}   [{} tiles read, {} physical bytes]",
            stats.tiles_read, stats.io.bytes_read
        );
    }

    // The unsold quarter reads zero tiles — partial coverage at work.
    let (_, stats) = execute(
        &db.begin_read(),
        "SELECT sum_cells(sales[91:181, *, *]) FROM sales",
    )?;
    assert_eq!(stats.tiles_read, 0);
    assert_eq!(stats.io.bytes_read, 0);
    println!("\nunsold quarter answered without touching storage");
    Ok(())
}
