//! OLAP data cube with directional tiling (§5.2 "Partitioning the
//! Dimensions", the paper's Figure 3 scenario).
//!
//! A 3-D sales cube (days x products x stores) is tiled along its category
//! boundaries — months, product classes, country districts — so that every
//! sub-aggregation over categories reads only the data it needs.
//!
//! ```text
//! cargo run --release --example olap_cube
//! ```

use tilestore::{
    AlignedTiling, Array, AxisPartition, CellType, CostModel, Database, DefDomain,
    DirectionalTiling, Domain, MddType, Scheme,
};

/// Sums the u32 cells of an array (a toy aggregation).
fn total_sales(a: &Array) -> u64 {
    a.to_cells::<u32>()
        .expect("cube cells are u32")
        .iter()
        .map(|&c| u64::from(c))
        .sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A one-year cube: 365 days x 60 products x 100 stores, 4-byte cells.
    let domain: Domain = "[1:365,1:60,1:100]".parse()?;

    // Category boundaries: months along time, 3 product classes, 8
    // districts (compare Table 1 of the paper).
    let months = {
        let mut points = vec![1i64];
        let lengths = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
        let mut day = 1;
        for len in &lengths[..11] {
            day += len;
            points.push(day);
        }
        points.push(365);
        points
    };
    let partitions = vec![
        AxisPartition::new(0, months),
        AxisPartition::new(1, vec![1, 27, 42, 60]),
        AxisPartition::new(2, vec![1, 27, 35, 41, 59, 73, 89, 97, 100]),
    ];

    let cell_type = CellType::of::<u32>();
    let mdd_type = MddType::new(cell_type, DefDomain::unlimited(3)?);

    // Load the same data under directional and regular tiling side by side.
    let data = Array::from_fn(domain.clone(), |p| ((p[0] * p[2]) % 50) as u32)?;

    let directional = Database::in_memory()?;
    directional.create_object(
        "sales",
        mdd_type.clone(),
        Scheme::Directional(DirectionalTiling::new(partitions, 64 * 1024)),
    )?;
    directional.insert("sales", &data)?;

    let regular = Database::in_memory()?;
    regular.create_object(
        "sales",
        mdd_type,
        Scheme::Aligned(AlignedTiling::regular(3, 64 * 1024)),
    )?;
    regular.insert("sales", &data)?;

    println!(
        "directional: {} tiles | regular: {} tiles",
        directional.object("sales")?.tile_count(),
        regular.object("sales")?.tile_count()
    );

    // Sub-aggregation: total March sales of product class 2 in district 2
    // (exactly one category block in each dimension).
    let march_class2_district2: Domain = "[60:90,27:41,27:34]".parse()?;
    let model = CostModel::classic_disk();

    for (name, db) in [("directional", &directional), ("regular", &regular)] {
        let __q = db.range_query("sales", &march_class2_district2)?;
        let (cells, stats) = (__q.array, __q.stats);
        let times = stats.times(&model);
        println!(
            "{name:>12}: total={} bytes_read={} tiles={} t_totalcpu={:.3}s",
            total_sales(&cells),
            stats.io.bytes_read,
            stats.tiles_read,
            times.total_cpu()
        );
    }

    // The directional query reads exactly the category block; the regular
    // one drags in border-tile data.
    let dir_stats = { directional.range_query("sales", &march_class2_district2)? }.stats;
    assert_eq!(
        dir_stats.cells_processed,
        march_class2_district2.cells(),
        "directional tiling reads exactly the queried cells for category-aligned queries"
    );
    let reg_stats = { regular.range_query("sales", &march_class2_district2)? }.stats;
    assert!(reg_stats.io.bytes_read > dir_stats.io.bytes_read);
    println!(
        "category-aligned query: directional reads exactly {} bytes; regular reads {:.1}x that",
        dir_stats.io.bytes_read,
        reg_stats.io.bytes_read as f64 / dir_stats.io.bytes_read as f64
    );

    Ok(())
}
