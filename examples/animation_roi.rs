//! Areas-of-interest tiling for a 3-D animation (§5.2 / §6.2 of the paper).
//!
//! A video editor repeatedly grabs the region around the main character.
//! Declaring that region as an *area of interest* makes the storage layout
//! guarantee that fetching it reads no byte outside it.
//!
//! ```text
//! cargo run --release --example animation_roi
//! ```

use tilestore::{
    AreasOfInterestTiling, Array, CellType, Database, DefDomain, Domain, MddType, Rgb, Scheme,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 60 frames of 160x120 RGB video.
    let domain: Domain = "[0:59,0:159,0:119]".parse()?;

    // The character's head and body boxes across all frames (they overlap,
    // like Table 5's areas).
    let head: Domain = "[0:59,80:120,25:60]".parse()?;
    let body: Domain = "[0:59,70:159,25:105]".parse()?;

    let db = Database::in_memory()?;
    db.create_object(
        "clip",
        MddType::new(CellType::of::<Rgb>(), DefDomain::unlimited(3)?),
        Scheme::AreasOfInterest(AreasOfInterestTiling::new(
            vec![head.clone(), body.clone()],
            256 * 1024,
        )),
    )?;

    // Synthesize frames: character pixels bright, background dim.
    let frames = Array::from_fn(domain.clone(), |p| {
        if head.contains_point(p) {
            Rgb::new(230, 180, 150)
        } else if body.contains_point(p) {
            Rgb::new(40, 90, 170)
        } else {
            Rgb::new(10, 10, 20)
        }
    })?;
    let load = db.insert("clip", &frames)?;
    println!(
        "stored {} ({}) as {} area-aligned tiles",
        domain,
        human(frames.size_bytes()),
        load.tiles_created
    );

    // Fetch the head box: the §5.2 guarantee says we read exactly its
    // bytes, never a byte of background.
    let __q = db.range_query("clip", &head)?;
    let (head_pixels, stats) = (__q.array, __q.stats);
    assert_eq!(stats.cells_processed, head.cells(), "zero waste");
    assert_eq!(stats.cells_copied, head.cells());
    println!(
        "head fetch: {} read for a {} region — zero waste, {} tiles",
        human(stats.io.bytes_read),
        human(head.size_bytes(3)?),
        stats.tiles_read
    );
    let sample: Rgb = head_pixels.get(&tilestore::Point::from_slice(&[30, 100, 40]))?;
    assert_eq!(sample, Rgb::new(230, 180, 150));

    // The body fetch overlaps the head area; the IntersectCode machinery
    // keeps tiles from crossing either boundary, so it is also waste-free.
    let stats = { db.range_query("clip", &body)? }.stats;
    assert_eq!(stats.cells_processed, body.cells(), "zero waste");
    println!(
        "body fetch: {} read for a {} region — zero waste, {} tiles",
        human(stats.io.bytes_read),
        human(body.size_bytes(3)?),
        stats.tiles_read
    );

    // An unexpected access (a single frame) still works — it just pays for
    // the adapted layout by reading parts of several elongated tiles.
    let frame0: Domain = "[0:0,0:159,0:119]".parse()?;
    let stats = { db.range_query("clip", &frame0)? }.stats;
    println!(
        "unexpected single-frame fetch: {} read for a {} region ({} tiles)",
        human(stats.io.bytes_read),
        human(frame0.size_bytes(3)?),
        stats.tiles_read
    );

    Ok(())
}

fn human(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    }
}
