//! Quickstart: store a 2-D image under regular tiling, query a sub-image.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tilestore::{
    AccessRegion, AlignedTiling, Array, CellType, CostModel, Database, DefDomain, Domain, MddType,
    Point, Scheme,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An in-memory database (use Database::create_dir for a file-backed
    //    one).
    let db = Database::in_memory()?;

    // 2. Declare an MDD type: 1-byte grayscale cells, unlimited 2-D
    //    definition domain — instances can grow in any direction.
    let mdd_type = MddType::new(CellType::of::<u8>(), DefDomain::unlimited(2)?);

    // 3. Create the object with regular (aligned, equal-ratio) tiling and
    //    a 4 KB MaxTileSize.
    db.create_object(
        "image",
        mdd_type,
        Scheme::Aligned(AlignedTiling::regular(2, 4 * 1024)),
    )?;

    // 4. Insert a 256x256 synthetic image. The engine computes the tiling
    //    specification, copies each tile's cells together, stores them as
    //    BLOBs and indexes their domains (the paper's two-phase load).
    let domain: Domain = "[0:255,0:255]".parse()?;
    let image = Array::from_fn(domain, |p| ((p[0] ^ p[1]) & 0xFF) as u8)?;
    let stats = db.insert("image", &image)?;
    println!(
        "loaded 256x256 image as {} tiles ({} pages written)",
        stats.tiles_created, stats.pages_written
    );

    // 5. Range query: a 64x64 crop. The R+-tree finds the intersected
    //    tiles; only those are fetched.
    let crop: Domain = "[96:159,96:159]".parse()?;
    let __q = db.range_query("image", &crop)?;
    let (sub, qstats) = (__q.array, __q.stats);
    assert_eq!(sub.domain(), &crop);
    assert_eq!(
        sub.get::<u8>(&Point::from_slice(&[100, 130]))?,
        ((100 ^ 130) & 0xFF) as u8
    );

    // 6. Inspect the cost decomposition of §6 of the paper.
    let times = qstats.times(&CostModel::classic_disk());
    println!(
        "crop query: {} tiles read, {} pages, {} cells copied",
        qstats.tiles_read, qstats.io.pages_read, qstats.cells_copied
    );
    println!(
        "model times: t_ix={:.4}s t_o={:.4}s t_cpu={:.4}s (total {:.4}s)",
        times.t_ix,
        times.t_o,
        times.t_cpu,
        times.total_cpu()
    );

    // 7. Other access types of §5.1: a full row (partial range query) and
    //    a single column as a 1-D section.
    let row = {
        db.query(
            "image",
            &AccessRegion::Partial(vec![Some(tilestore::AxisRange::new(42, 42)?), None]),
        )?
    }
    .array;
    println!("row 42 has domain {}", row.domain());

    let column = { db.query("image", &AccessRegion::Section(vec![None, Some(7)]))? }.array;
    println!(
        "column 7 as a section has dimensionality {} (domain {})",
        column.domain().dim(),
        column.domain()
    );

    Ok(())
}
