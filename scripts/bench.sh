#!/usr/bin/env bash
# Runs the fixed-seed micro-benchmark harness and writes BENCH_PR2.json
# (median/p95 per workload plus an observability metrics snapshot) at the
# repository root. Fully offline; pin the sample count for reproducible
# wall-clock bounds.
set -euo pipefail
cd "$(dirname "$0")/.."

: "${TILESTORE_BENCH_SAMPLES:=15}"
export TILESTORE_BENCH_SAMPLES

OUT="${1:-BENCH_PR2.json}"

cargo run --release --offline -p tilestore-bench --bin microbench -- "$OUT"
echo "bench report written to $OUT"
