#!/usr/bin/env bash
# Runs the benchmark harnesses and writes machine-readable reports at the
# repository root. Fully offline; pin the sample count for reproducible
# wall-clock bounds.
#
#   BENCH_PR2.json — fixed-seed micro-benchmarks (median/p95 per workload
#                    plus an observability metrics snapshot)
#   BENCH_PR4.json — serving layer: paired serial-vs-parallel large-range
#                    query and concurrent-client throughput over TCP
#   BENCH_PR5.json — snapshot reads: reader p50/p95 latency while a writer
#                    continuously re-tiles, RwLock baseline vs snapshots
#   BENCH_PR6.json — value-predicate pruning: sparse-predicate read vs the
#                    full-scan baseline (tiles_read and modelled t_o
#                    reduction ratios, plus wall-clock medians)
#   BENCH_PR7.json — observability overhead: the same workload with the
#                    tracer off vs on under a request scope, and EXPLAIN
#                    ANALYZE vs plain execution
#   BENCH_PR8.json — sharded buffer pool + word-wide codec kernels: paired
#                    1/4/16-client throughput over a bare FilePageStore vs
#                    the sharded cache, and PackBits/delta MB/s scalar vs
#                    word-wide on constant-run and ramp payloads
#   BENCH_PR9.json — scatter-gather cluster serving: 16-client read-mix
#                    throughput over 1/2/4 local shards behind one
#                    coordinator endpoint vs a plain single-engine serve,
#                    with the ratio against the BENCH_PR8 16-client figure
#   BENCH_PR10.json — physical layout: cold quadrant read over a scattered
#                    insertion order vs the same read after `defrag`
#                    (run counters, modelled seek-dominated t_o ratio,
#                    wall-clock medians)
set -euo pipefail
cd "$(dirname "$0")/.."

: "${TILESTORE_BENCH_SAMPLES:=15}"
export TILESTORE_BENCH_SAMPLES

MICRO_OUT="${1:-BENCH_PR2.json}"
SERVER_OUT="${2:-BENCH_PR4.json}"
SNAPSHOT_OUT="${3:-BENCH_PR5.json}"
PREDICATE_OUT="${4:-BENCH_PR6.json}"
OBS_OUT="${5:-BENCH_PR7.json}"
POOL_OUT="${6:-BENCH_PR8.json}"
CLUSTER_OUT="${7:-BENCH_PR9.json}"
LAYOUT_OUT="${8:-BENCH_PR10.json}"

cargo run --release --offline -p tilestore-bench --bin microbench -- "$MICRO_OUT"
echo "micro-bench report written to $MICRO_OUT"

cargo run --release --offline -p tilestore-bench --bin server_bench -- "$SERVER_OUT"
echo "server bench report written to $SERVER_OUT"

cargo run --release --offline -p tilestore-bench --bin snapshot_bench -- "$SNAPSHOT_OUT"
echo "snapshot bench report written to $SNAPSHOT_OUT"

cargo run --release --offline -p tilestore-bench --bin predicate_bench -- "$PREDICATE_OUT"
echo "predicate bench report written to $PREDICATE_OUT"

cargo run --release --offline -p tilestore-bench --bin obs_overhead -- "$OBS_OUT"
echo "observability overhead report written to $OBS_OUT"

cargo run --release --offline -p tilestore-bench --bin pool_codec_bench -- "$POOL_OUT"
echo "buffer-pool/codec bench report written to $POOL_OUT"

cargo run --release --offline -p tilestore-bench --bin cluster_bench -- "$CLUSTER_OUT"
echo "cluster bench report written to $CLUSTER_OUT"

cargo run --release --offline -p tilestore-bench --bin layout_bench -- "$LAYOUT_OUT"
echo "layout bench report written to $LAYOUT_OUT"
