#!/usr/bin/env bash
# Canonical CI gate: hermetic build + full test suite + formatting.
#
# The workspace has zero external dependencies (everything lives in
# crates/testkit), so `--offline` must always succeed — a build that
# reaches for the network is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check
