#!/usr/bin/env bash
# Canonical CI gate: hermetic build + full test suite + formatting, then an
# end-to-end smoke test of the TCP serving layer on the loopback interface.
#
# The workspace has zero external dependencies (everything lives in
# crates/testkit), so `--offline` must always succeed — a build that
# reaches for the network is a regression. The smoke test stays offline
# too: the server binds 127.0.0.1 on an ephemeral port.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The buffer-pool concurrency suite (stale-frame race repro + cross-shard
# freshness property) is the regression gate for the sharded cache; run it
# by name so a filtered or partial test invocation can never skip it.
cargo test -q --offline -p tilestore-storage --test concurrency
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# --- Server smoke test: serve a small database, query it over TCP, shut
# down gracefully through the client, and verify the files stayed clean.
TILESTORE=target/release/tilestore
SMOKE_DIR=$(mktemp -d)
SERVE_LOG="$SMOKE_DIR/serve.log"
SERVER_PID=""
SHARD0_PID=""
SHARD1_PID=""
COORD_PID=""
cleanup() {
    for pid in "$SERVER_PID" "$SHARD0_PID" "$SHARD1_PID" "$COORD_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

# Polls a serve log for the bound address; dies if the process exits first.
wait_addr() {
    local log=$1 pid=$2 addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$log")
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; echo "server died during startup" >&2; return 1; }
        sleep 0.1
    done
    echo "server never reported its address" >&2
    return 1
}

"$TILESTORE" "$SMOKE_DIR/db" init >/dev/null
"$TILESTORE" "$SMOKE_DIR/db" create img u8 2 'aligned:[*,1]:8' >/dev/null
"$TILESTORE" "$SMOKE_DIR/db" load img '[0:63,0:63]' gradient >/dev/null

# Slow-query threshold 0: every statement lands in the slow log, so the
# ops-plane checks below observe entries deterministically.
"$TILESTORE" "$SMOKE_DIR/db" serve 127.0.0.1:0 0 >"$SERVE_LOG" &
SERVER_PID=$!
ADDR=$(wait_addr "$SERVE_LOG" "$SERVER_PID")
echo "smoke server on $ADDR"

"$TILESTORE" client "$ADDR" ping | grep -q pong
"$TILESTORE" client "$ADDR" query 'SELECT sum_cells(img) FROM img' >/dev/null
"$TILESTORE" client "$ADDR" query 'SELECT img[0:3,0:3] FROM img' >/dev/null
"$TILESTORE" client "$ADDR" query 'SELECT count_cells(img) FROM img WHERE img > 200' >/dev/null
"$TILESTORE" client "$ADDR" info img | grep -q '"tiles"'
"$TILESTORE" client "$ADDR" fsck >/dev/null
# --- Ops plane: the planner report, the metrics snapshot with percentile
# summaries, the health check, and a slow-query entry for a statement the
# smoke test just ran (threshold 0 records everything).
"$TILESTORE" client "$ADDR" explain 'SELECT count_cells(img) FROM img WHERE img > 200' | grep -q '"plan"'
"$TILESTORE" client "$ADDR" explain 'SELECT sum_cells(img) FROM img' --analyze | grep -q '"analyze"'
"$TILESTORE" client "$ADDR" metrics | grep -q 'engine.queries'
"$TILESTORE" client "$ADDR" metrics | grep -q '"p99"'
"$TILESTORE" client "$ADDR" health | grep -q '"status": "ok"'
"$TILESTORE" client "$ADDR" top | grep -q 'count_cells'
test -s "$SMOKE_DIR/db/slow_queries.log"
"$TILESTORE" client "$ADDR" shutdown >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
"$TILESTORE" "$SMOKE_DIR/db" query 'SELECT max_cells(img) FROM img WHERE img < 100' | grep -q pruned
# --- Defrag smoke: rewrite the tile BLOBs onto contiguous pages (full,
# then budget-paced), and verify queries still answer and fsck stays clean.
"$TILESTORE" "$SMOKE_DIR/db" retile img --defrag | grep -q defragmented
"$TILESTORE" "$SMOKE_DIR/db" retile img --defrag:4 | grep -q defragmented
"$TILESTORE" "$SMOKE_DIR/db" query 'SELECT sum_cells(img) FROM img' | grep -q 'tiles'
"$TILESTORE" "$SMOKE_DIR/db" fsck >/dev/null
echo "server smoke test passed"

# --- Cluster smoke test: a 2-shard store split at row 16, each shard
# served by its own process, with a scatter-gather coordinator in front.
# A seam-straddling query must come back as one stitched slab carrying the
# per-shard epoch vector.
CLUSTER="$SMOKE_DIR/cluster"
"$TILESTORE" "$CLUSTER" cluster-init 2 0 16 >/dev/null
"$TILESTORE" "$CLUSTER" create img u32 2 'regular:4' >/dev/null
"$TILESTORE" "$CLUSTER" load img '[0:31,0:31]' gradient >/dev/null
# The coordinator answers directly over local shards first.
"$TILESTORE" "$CLUSTER" query 'SELECT img[14:17,2:5] FROM img' | grep -q 'array over \[14:17,2:5\]'
"$TILESTORE" "$CLUSTER" explain 'SELECT img FROM img' | grep -q 'shard 1'
# Defrag shares the retile grammar on a cluster root; the seam query must
# still stitch afterwards.
"$TILESTORE" "$CLUSTER" retile img --defrag | grep -q 'defragmented on 2 shard(s)'
"$TILESTORE" "$CLUSTER" query 'SELECT img[14:17,2:5] FROM img' | grep -q 'array over \[14:17,2:5\]'

# Each shard directory is a plain database; serve the two shards as
# independent processes, then the coordinator over their addresses.
"$TILESTORE" "$CLUSTER/shard-0" serve 127.0.0.1:0 >"$SMOKE_DIR/shard0.log" &
SHARD0_PID=$!
"$TILESTORE" "$CLUSTER/shard-1" serve 127.0.0.1:0 >"$SMOKE_DIR/shard1.log" &
SHARD1_PID=$!
SHARD0_ADDR=$(wait_addr "$SMOKE_DIR/shard0.log" "$SHARD0_PID")
SHARD1_ADDR=$(wait_addr "$SMOKE_DIR/shard1.log" "$SHARD1_PID")
"$TILESTORE" "$CLUSTER" cluster-serve 127.0.0.1:0 "$SHARD0_ADDR,$SHARD1_ADDR" >"$SMOKE_DIR/coord.log" &
COORD_PID=$!
COORD_ADDR=$(wait_addr "$SMOKE_DIR/coord.log" "$COORD_PID")
echo "cluster coordinator on $COORD_ADDR (shards $SHARD0_ADDR, $SHARD1_ADDR)"

"$TILESTORE" client "$COORD_ADDR" ping | grep -q pong
# Seam-straddling read through the full remote scatter-gather path.
"$TILESTORE" client "$COORD_ADDR" query 'SELECT img[14:17,2:5] FROM img' >/dev/null
"$TILESTORE" client "$COORD_ADDR" query 'SELECT sum_cells(img) FROM img' >/dev/null
"$TILESTORE" client "$COORD_ADDR" explain 'SELECT img FROM img' | grep -q '"shard"'
"$TILESTORE" client "$COORD_ADDR" cluster | grep -q '"shards": 2'
kill "$COORD_PID" 2>/dev/null; wait "$COORD_PID" 2>/dev/null || true
COORD_PID=""
for pid in "$SHARD0_PID" "$SHARD1_PID"; do kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null || true; done
SHARD0_PID=""
SHARD1_PID=""
echo "cluster smoke test passed"
