#!/usr/bin/env bash
# Canonical CI gate: hermetic build + full test suite + formatting, then an
# end-to-end smoke test of the TCP serving layer on the loopback interface.
#
# The workspace has zero external dependencies (everything lives in
# crates/testkit), so `--offline` must always succeed — a build that
# reaches for the network is a regression. The smoke test stays offline
# too: the server binds 127.0.0.1 on an ephemeral port.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The buffer-pool concurrency suite (stale-frame race repro + cross-shard
# freshness property) is the regression gate for the sharded cache; run it
# by name so a filtered or partial test invocation can never skip it.
cargo test -q --offline -p tilestore-storage --test concurrency
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# --- Server smoke test: serve a small database, query it over TCP, shut
# down gracefully through the client, and verify the files stayed clean.
TILESTORE=target/release/tilestore
SMOKE_DIR=$(mktemp -d)
SERVE_LOG="$SMOKE_DIR/serve.log"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

"$TILESTORE" "$SMOKE_DIR/db" init >/dev/null
"$TILESTORE" "$SMOKE_DIR/db" create img u8 2 'aligned:[*,1]:8' >/dev/null
"$TILESTORE" "$SMOKE_DIR/db" load img '[0:63,0:63]' gradient >/dev/null

# Slow-query threshold 0: every statement lands in the slow log, so the
# ops-plane checks below observe entries deterministically.
"$TILESTORE" "$SMOKE_DIR/db" serve 127.0.0.1:0 0 >"$SERVE_LOG" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$SERVE_LOG"; echo "server died during startup"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] && echo "smoke server on $ADDR" || { echo "server never reported its address"; exit 1; }

"$TILESTORE" client "$ADDR" ping | grep -q pong
"$TILESTORE" client "$ADDR" query 'SELECT sum_cells(img) FROM img' >/dev/null
"$TILESTORE" client "$ADDR" query 'SELECT img[0:3,0:3] FROM img' >/dev/null
"$TILESTORE" client "$ADDR" query 'SELECT count_cells(img) FROM img WHERE img > 200' >/dev/null
"$TILESTORE" client "$ADDR" info img | grep -q '"tiles"'
"$TILESTORE" client "$ADDR" fsck >/dev/null
# --- Ops plane: the planner report, the metrics snapshot with percentile
# summaries, the health check, and a slow-query entry for a statement the
# smoke test just ran (threshold 0 records everything).
"$TILESTORE" client "$ADDR" explain 'SELECT count_cells(img) FROM img WHERE img > 200' | grep -q '"plan"'
"$TILESTORE" client "$ADDR" explain 'SELECT sum_cells(img) FROM img' --analyze | grep -q '"analyze"'
"$TILESTORE" client "$ADDR" metrics | grep -q 'engine.queries'
"$TILESTORE" client "$ADDR" metrics | grep -q '"p99"'
"$TILESTORE" client "$ADDR" health | grep -q '"status": "ok"'
"$TILESTORE" client "$ADDR" top | grep -q 'count_cells'
test -s "$SMOKE_DIR/db/slow_queries.log"
"$TILESTORE" client "$ADDR" shutdown >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
"$TILESTORE" "$SMOKE_DIR/db" query 'SELECT max_cells(img) FROM img WHERE img < 100' | grep -q pruned
"$TILESTORE" "$SMOKE_DIR/db" fsck >/dev/null
echo "server smoke test passed"
